"""End-to-end cost model: from a workload and platform choice to a monthly bill.

This is the user-facing entry point of the reproduction: given a workload
(CPU / IO / memory footprint), a resource allocation, a billing model and a
serving platform, compute the per-invocation and per-month cost with the
effects of every layer applied:

1. the serving architecture adds per-request overhead to the billable duration,
2. the concurrency model may stretch execution under load (contention),
3. OS scheduling quantization changes the wall-clock duration of CPU-bound
   work at fractional allocations,
4. the billing model rounds the resulting duration and resources and adds the
   invocation fee.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.billing.calculator import BillingCalculator, InvocationBillingInput
from repro.billing.catalog import PlatformName
from repro.platform.config import PlatformConfig
from repro.sched.analytical import theoretical_duration
from repro.sched.presets import PROVIDER_SCHED_PRESETS
from repro.workloads.functions import WorkloadSpec

__all__ = ["CostModel", "WorkloadCostReport"]


@dataclass(frozen=True)
class WorkloadCostReport:
    """The cost of running a workload at a given request volume."""

    platform: str
    alloc_vcpus: float
    alloc_memory_gb: float
    execution_duration_s: float
    billable_cpu_seconds_per_request: float
    billable_memory_gb_seconds_per_request: float
    cost_per_invocation: float
    cost_per_million_invocations: float
    invocation_fee_share: float
    breakdown: Dict[str, float]

    def monthly_cost(self, requests_per_month: float) -> float:
        """Total monthly cost at the given request volume."""
        if requests_per_month < 0:
            raise ValueError("requests_per_month must be >= 0")
        return self.cost_per_invocation * requests_per_month


class CostModel:
    """Computes workload costs with serving and scheduling effects applied."""

    def __init__(
        self,
        billing_platform: "PlatformName | str",
        serving_platform: Optional[PlatformConfig] = None,
        scheduling_provider: Optional[str] = None,
    ) -> None:
        """Create a cost model.

        Args:
            billing_platform: which Table 1 billing model to apply.
            serving_platform: optional §3 serving preset; when given, its
                serving-architecture overhead is added to each request.
            scheduling_provider: optional §4 provider key (``aws_lambda``,
                ``gcp_run_functions``, ``ibm_code_engine``); when given, the
                execution duration of CPU-bound work is computed with the
                provider's bandwidth-control period via Equation (2) rather
                than ideal reciprocal scaling.
        """
        self.calculator = BillingCalculator(billing_platform)
        self.serving_platform = serving_platform
        if scheduling_provider is not None and scheduling_provider not in PROVIDER_SCHED_PRESETS:
            raise KeyError(
                f"unknown scheduling provider {scheduling_provider!r}; "
                f"valid: {sorted(PROVIDER_SCHED_PRESETS)}"
            )
        self.scheduling_provider = scheduling_provider

    # ------------------------------------------------------------------
    # Duration modelling
    # ------------------------------------------------------------------

    def execution_duration_s(
        self,
        workload: WorkloadSpec,
        alloc_vcpus: float,
        concurrent_requests: int = 1,
    ) -> float:
        """Wall-clock execution duration of one request with all layers applied."""
        if alloc_vcpus <= 0:
            raise ValueError("alloc_vcpus must be positive")
        if concurrent_requests < 1:
            raise ValueError("concurrent_requests must be >= 1")
        cpu_time = workload.cpu_time_s
        # Layer 3: OS scheduling.  CPU-bound time under a fractional allocation
        # follows Equation (2) with the provider's bandwidth-control period;
        # without a provider we assume ideal reciprocal scaling.
        if self.scheduling_provider is not None and alloc_vcpus < 1.0:
            period = PROVIDER_SCHED_PRESETS[self.scheduling_provider].period_s
            compute_duration = theoretical_duration(cpu_time, period, alloc_vcpus * period)
        else:
            compute_duration = cpu_time / min(alloc_vcpus, 1.0)
        # Layer 2: contention from the concurrency model.
        if self.serving_platform is not None and concurrent_requests > 1:
            slowdown = self.serving_platform.contention.slowdown(concurrent_requests, alloc_vcpus)
            compute_duration *= slowdown
        duration = compute_duration + workload.io_time_s
        # Layer 2: serving-architecture overhead.
        if self.serving_platform is not None:
            duration += self.serving_platform.serving.mean_overhead_s(alloc_vcpus)
        return duration

    # ------------------------------------------------------------------
    # Billing
    # ------------------------------------------------------------------

    def invocation_cost(
        self,
        workload: WorkloadSpec,
        alloc_vcpus: float,
        alloc_memory_gb: float,
        concurrent_requests: int = 1,
        cold_start: bool = False,
        init_duration_s: float = 0.0,
    ) -> WorkloadCostReport:
        """Bill one invocation of the workload on this model's platform."""
        duration = self.execution_duration_s(workload, alloc_vcpus, concurrent_requests)
        inputs = InvocationBillingInput(
            execution_s=duration,
            init_s=init_duration_s if cold_start else 0.0,
            alloc_vcpus=alloc_vcpus,
            alloc_memory_gb=alloc_memory_gb,
            used_cpu_seconds=workload.cpu_time_s,
            used_memory_gb=workload.used_memory_gb,
        )
        billed = self.calculator.bill(inputs)
        total = billed.invoice.total
        fee = billed.invoice.charge_for("invocation_fee")
        return WorkloadCostReport(
            platform=self.calculator.model.platform,
            alloc_vcpus=alloc_vcpus,
            alloc_memory_gb=alloc_memory_gb,
            execution_duration_s=duration,
            billable_cpu_seconds_per_request=billed.billable_cpu_seconds,
            billable_memory_gb_seconds_per_request=billed.billable_memory_gb_seconds,
            cost_per_invocation=total,
            cost_per_million_invocations=total * 1e6,
            invocation_fee_share=(fee / total) if total > 0 else 0.0,
            breakdown=billed.invoice.as_dict(),
        )
