"""The paper's primary contribution: a top-down serverless cost analysis framework.

The paper's methodology traces costs through three layers -- user-facing
billing models (§2), the request serving architecture (§3), and OS scheduling
(§4).  This package ties the substrates together:

- :mod:`repro.core.cost_model` computes, for a workload on a platform, the
  billable resources and monetary cost with every layer's effect applied
  (billing rounding and fees, serving overhead, contention slowdown,
  scheduling-induced duration changes).
- :mod:`repro.core.decomposition` splits an invocation's cost into the
  contributions of each layer, giving the per-layer breakdown the paper argues
  practitioners should compute for their own workloads (§5).
- :mod:`repro.core.exploit` implements the §4.3 intermittent-execution
  exploit (decomposing a long function into short bursts that fit within the
  bandwidth-control quota) and the §3.3 Azure background-task pattern.
- :mod:`repro.core.rightsizing` searches resource allocations while being
  aware of the scheduling quantization jumps that existing right-sizing tools
  ignore.
"""

from repro.core.cost_model import CostModel, WorkloadCostReport
from repro.core.decomposition import CostDecomposition, decompose_invocation_cost
from repro.core.exploit import IntermittentExecutionPlan, evaluate_intermittent_execution
from repro.core.rightsizing import RightsizingAdvisor, RightsizingRecommendation
from repro.core.advisor import (
    PlatformSelectionAdvisor,
    evaluate_function_decomposition,
    evaluate_function_merging,
)
from repro.core.report import render_table, to_markdown_table

__all__ = [
    "CostModel",
    "WorkloadCostReport",
    "CostDecomposition",
    "decompose_invocation_cost",
    "IntermittentExecutionPlan",
    "evaluate_intermittent_execution",
    "RightsizingAdvisor",
    "RightsizingRecommendation",
    "PlatformSelectionAdvisor",
    "evaluate_function_merging",
    "evaluate_function_decomposition",
    "render_table",
    "to_markdown_table",
]
