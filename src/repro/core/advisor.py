"""Actionable recommendations for serverless users (paper §5).

The paper closes with recommendations practitioners can act on:

- pick the platform whose billing practices, concurrency model, serving
  architecture, keep-alive behaviour and scheduling granularity best match the
  workload (:class:`PlatformSelectionAdvisor`),
- merge similar functions to amortise invocation fees, or decompose functions
  to improve utilisation (:func:`evaluate_function_merging`,
  :func:`evaluate_function_decomposition`),
- tune resource allocations away from quantization boundaries
  (:class:`repro.core.rightsizing.RightsizingAdvisor`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.billing.calculator import BillingCalculator, InvocationBillingInput
from repro.billing.catalog import PlatformName
from repro.core.cost_model import CostModel
from repro.platform.config import PlatformConfig
from repro.platform.presets import PLATFORM_PRESETS
from repro.traces.schema import Trace
from repro.workloads.functions import WorkloadSpec

__all__ = [
    "PlatformRanking",
    "PlatformSelectionAdvisor",
    "MergeRecommendation",
    "evaluate_function_merging",
    "DecompositionRecommendation",
    "evaluate_function_decomposition",
]

#: Billing platform matched with its §3 serving preset and §4 scheduling provider.
_DEFAULT_DEPLOYMENTS: Dict[PlatformName, Dict[str, Optional[str]]] = {
    PlatformName.AWS_LAMBDA: {"serving": "aws_lambda_like", "sched": "aws_lambda"},
    PlatformName.GCP_RUN_REQUEST: {"serving": "gcp_run_like", "sched": "gcp_run_functions"},
    PlatformName.AZURE_CONSUMPTION: {"serving": "azure_consumption_like", "sched": None},
    PlatformName.IBM_CODE_ENGINE: {"serving": "ibm_code_engine_like", "sched": "ibm_code_engine"},
    PlatformName.CLOUDFLARE_WORKERS: {"serving": "cloudflare_workers_like", "sched": None},
}


@dataclass(frozen=True)
class PlatformRanking:
    """One platform's projected cost for a workload at a request volume."""

    platform: str
    cost_per_invocation: float
    monthly_cost: float
    execution_duration_s: float
    invocation_fee_share: float

    def as_row(self) -> Dict[str, float]:
        return {
            "platform": self.platform,  # type: ignore[dict-item]
            "cost_per_invocation": self.cost_per_invocation,
            "monthly_cost": self.monthly_cost,
            "execution_duration_ms": self.execution_duration_s * 1e3,
            "invocation_fee_share": self.invocation_fee_share,
        }


class PlatformSelectionAdvisor:
    """Rank platforms by projected cost for a given workload and traffic volume.

    The projection applies each platform's billing model (Table 1), its serving
    architecture overhead (§3.2) and its OS-scheduling duration effects (§4)
    through :class:`repro.core.cost_model.CostModel`.
    """

    def __init__(
        self,
        deployments: Optional[Dict[PlatformName, Dict[str, Optional[str]]]] = None,
        presets: Optional[Dict[str, PlatformConfig]] = None,
    ) -> None:
        self.deployments = dict(deployments or _DEFAULT_DEPLOYMENTS)
        self.presets = dict(presets or PLATFORM_PRESETS)

    def rank(
        self,
        workload: WorkloadSpec,
        alloc_vcpus: float,
        alloc_memory_gb: float,
        requests_per_month: float,
        concurrent_requests: int = 1,
    ) -> List[PlatformRanking]:
        """Return platforms sorted by monthly cost (cheapest first)."""
        if requests_per_month < 0:
            raise ValueError("requests_per_month must be >= 0")
        rankings: List[PlatformRanking] = []
        for platform, deployment in self.deployments.items():
            serving = self.presets.get(deployment["serving"]) if deployment["serving"] else None
            model = CostModel(platform, serving_platform=serving, scheduling_provider=deployment["sched"])
            report = model.invocation_cost(
                workload, alloc_vcpus, alloc_memory_gb, concurrent_requests=concurrent_requests
            )
            rankings.append(
                PlatformRanking(
                    platform=platform.value,
                    cost_per_invocation=report.cost_per_invocation,
                    monthly_cost=report.monthly_cost(requests_per_month),
                    execution_duration_s=report.execution_duration_s,
                    invocation_fee_share=report.invocation_fee_share,
                )
            )
        return sorted(rankings, key=lambda r: r.monthly_cost)

    def rank_for_trace(
        self, trace: Trace, requests_per_month: Optional[float] = None
    ) -> List[PlatformRanking]:
        """Rank platforms using a trace's empirical request mix instead of a single workload.

        Each request is billed under each platform's model (via
        :class:`BillingCalculator`), which captures duration rounding and fee
        effects for the trace's real duration distribution.
        """
        requests = trace.exclude_zero_cpu().requests
        if not requests:
            raise ValueError("trace has no CPU-reporting requests")
        volume = requests_per_month if requests_per_month is not None else float(len(requests))
        rankings: List[PlatformRanking] = []
        for platform in self.deployments:
            calculator = BillingCalculator(platform)
            total = 0.0
            total_duration = 0.0
            total_fee = 0.0
            for record in requests:
                billed = calculator.bill(InvocationBillingInput.from_request(record))
                total += billed.invoice.total
                total_fee += billed.invoice.charge_for("invocation_fee")
                total_duration += record.duration_s
            per_invocation = total / len(requests)
            rankings.append(
                PlatformRanking(
                    platform=platform.value,
                    cost_per_invocation=per_invocation,
                    monthly_cost=per_invocation * volume,
                    execution_duration_s=total_duration / len(requests),
                    invocation_fee_share=(total_fee / total) if total > 0 else 0.0,
                )
            )
        return sorted(rankings, key=lambda r: r.monthly_cost)


# ----------------------------------------------------------------------
# Function merging / decomposition (§5)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class MergeRecommendation:
    """Outcome of merging a chain of functions into a single function."""

    separate_cost: float
    merged_cost: float
    num_functions: int

    @property
    def saving(self) -> float:
        """Fractional cost saving from merging (positive means merging is cheaper)."""
        if self.separate_cost <= 0:
            return 0.0
        return 1.0 - self.merged_cost / self.separate_cost

    @property
    def worthwhile(self) -> bool:
        return self.saving > 0


def evaluate_function_merging(
    workloads: Sequence[WorkloadSpec],
    alloc_vcpus: float,
    alloc_memory_gb: float,
    billing_platform: "PlatformName | str" = PlatformName.AWS_LAMBDA,
    scheduling_provider: Optional[str] = "aws_lambda",
) -> MergeRecommendation:
    """Compare invoking a chain of functions separately versus as one merged function.

    Merging removes the per-invocation fee of all but one call and avoids
    repeated minimum-billing cutoffs; it can hurt when the merged function
    forces a larger allocation for the whole duration (not modelled here: the
    merged function keeps the same allocation).
    """
    if not workloads:
        raise ValueError("at least one workload is required")
    model = CostModel(billing_platform, scheduling_provider=scheduling_provider)
    separate = sum(
        model.invocation_cost(w, alloc_vcpus, alloc_memory_gb).cost_per_invocation for w in workloads
    )
    merged_spec = WorkloadSpec(
        name="merged",
        cpu_time_s=sum(w.cpu_time_s for w in workloads),
        io_time_s=sum(w.io_time_s for w in workloads),
        used_memory_gb=max(w.used_memory_gb for w in workloads),
        description="merged chain",
    )
    merged = model.invocation_cost(merged_spec, alloc_vcpus, alloc_memory_gb).cost_per_invocation
    return MergeRecommendation(separate_cost=separate, merged_cost=merged, num_functions=len(workloads))


@dataclass(frozen=True)
class DecompositionRecommendation:
    """Outcome of decomposing one function into smaller pieces."""

    monolithic_cost: float
    decomposed_cost: float
    num_pieces: int

    @property
    def saving(self) -> float:
        if self.monolithic_cost <= 0:
            return 0.0
        return 1.0 - self.decomposed_cost / self.monolithic_cost

    @property
    def worthwhile(self) -> bool:
        return self.saving > 0


def evaluate_function_decomposition(
    workload: WorkloadSpec,
    piece_allocations_vcpus: Sequence[float],
    piece_cpu_fractions: Sequence[float],
    alloc_memory_gb: float,
    piece_memory_gb: Optional[Sequence[float]] = None,
    monolithic_vcpus: Optional[float] = None,
    billing_platform: "PlatformName | str" = PlatformName.AWS_LAMBDA,
    scheduling_provider: Optional[str] = "aws_lambda",
) -> DecompositionRecommendation:
    """Compare one right-sized-per-stage decomposition against the monolithic function.

    Decomposition lets each stage run at its own allocation (the paper's
    "decomposing functions to better utilize resources"), at the price of one
    invocation fee per stage.  ``piece_memory_gb`` fixes each stage's memory
    allocation; when omitted, each stage gets the proportional memory for its
    vCPU allocation (1,769 MB per vCPU), floored at the workload's resident
    memory -- i.e. the stage is right-sized rather than inheriting the
    monolithic function's allocation.
    """
    from repro.billing.pricing import VCPU_EQUIVALENT_MEMORY_GB

    if len(piece_allocations_vcpus) != len(piece_cpu_fractions):
        raise ValueError("piece allocation and fraction lists must have the same length")
    if abs(sum(piece_cpu_fractions) - 1.0) > 1e-6:
        raise ValueError("piece_cpu_fractions must sum to 1")
    if piece_memory_gb is not None and len(piece_memory_gb) != len(piece_allocations_vcpus):
        raise ValueError("piece_memory_gb must match piece_allocations_vcpus in length")
    model = CostModel(billing_platform, scheduling_provider=scheduling_provider)
    monolithic_vcpus = monolithic_vcpus if monolithic_vcpus is not None else max(piece_allocations_vcpus)
    monolithic = model.invocation_cost(workload, monolithic_vcpus, alloc_memory_gb).cost_per_invocation
    decomposed = 0.0
    for index, (vcpus, fraction) in enumerate(zip(piece_allocations_vcpus, piece_cpu_fractions)):
        if piece_memory_gb is not None:
            memory = piece_memory_gb[index]
        else:
            memory = max(workload.used_memory_gb, vcpus * VCPU_EQUIVALENT_MEMORY_GB)
        piece = WorkloadSpec(
            name=f"{workload.name}_piece",
            cpu_time_s=workload.cpu_time_s * fraction,
            io_time_s=workload.io_time_s * fraction,
            used_memory_gb=workload.used_memory_gb,
        )
        decomposed += model.invocation_cost(piece, vcpus, memory).cost_per_invocation
    return DecompositionRecommendation(
        monolithic_cost=monolithic, decomposed_cost=decomposed, num_pieces=len(piece_allocations_vcpus)
    )
