"""Plain-text and Markdown rendering of experiment result tables.

Every benchmark regenerates a paper table or figure as a list of row
dictionaries; these helpers render them for terminal output and for
EXPERIMENTS.md without pulling in any plotting dependency.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

__all__ = ["render_table", "to_markdown_table", "format_value"]


def format_value(value: object, precision: int = 4) -> str:
    """Format one cell: floats get fixed precision, everything else str()."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if value == 0:
            return "0"
        if abs(value) >= 1e5 or abs(value) < 1e-3:
            return f"{value:.{precision}e}"
        return f"{value:.{precision}g}"
    return str(value)


def _columns(rows: Sequence[Mapping[str, object]], columns: Optional[Sequence[str]]) -> List[str]:
    if columns is not None:
        return list(columns)
    seen: Dict[str, None] = {}
    for row in rows:
        for key in row:
            seen.setdefault(key, None)
    return list(seen)


def render_table(
    rows: Sequence[Mapping[str, object]],
    columns: Optional[Sequence[str]] = None,
    title: Optional[str] = None,
    precision: int = 4,
) -> str:
    """Render rows as an aligned plain-text table."""
    if not rows:
        return (title + "\n" if title else "") + "(no rows)"
    cols = _columns(rows, columns)
    cells = [[format_value(row.get(col, ""), precision) for col in cols] for row in rows]
    widths = [max(len(col), *(len(row[i]) for row in cells)) for i, col in enumerate(cols)]
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(col.ljust(widths[i]) for i, col in enumerate(cols)))
    lines.append("  ".join("-" * widths[i] for i in range(len(cols))))
    for row in cells:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(cols))))
    return "\n".join(lines)


def to_markdown_table(
    rows: Sequence[Mapping[str, object]],
    columns: Optional[Sequence[str]] = None,
    precision: int = 4,
) -> str:
    """Render rows as a GitHub-flavoured Markdown table."""
    if not rows:
        return "(no rows)"
    cols = _columns(rows, columns)
    header = "| " + " | ".join(cols) + " |"
    separator = "| " + " | ".join("---" for _ in cols) + " |"
    body = [
        "| " + " | ".join(format_value(row.get(col, ""), precision) for col in cols) + " |"
        for row in rows
    ]
    return "\n".join([header, separator] + body)
