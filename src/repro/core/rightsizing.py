"""Quantization-aware function right-sizing (paper §4.3 implications).

Existing right-sizing tools search the resource-allocation space assuming a
smooth performance-versus-allocation curve.  The paper shows the real curve
has step-like quantization jumps caused by CPU bandwidth control, so the
cheapest allocation meeting a latency target often sits *just above* a jump.
This advisor searches allocations with the Equation (2) duration model (plus
serving overhead) and the full billing model, so it lands on those
scheduling-aware sweet spots.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.billing.catalog import PlatformName
from repro.core.cost_model import CostModel
from repro.platform.config import PlatformConfig
from repro.workloads.functions import WorkloadSpec

__all__ = ["RightsizingRecommendation", "RightsizingAdvisor"]


@dataclass(frozen=True)
class RightsizingCandidate:
    """One evaluated allocation point."""

    alloc_vcpus: float
    alloc_memory_gb: float
    execution_duration_s: float
    cost_per_invocation: float
    meets_latency_target: bool


@dataclass(frozen=True)
class RightsizingRecommendation:
    """The advisor's output: the chosen allocation and the full sweep for inspection."""

    best: Optional[RightsizingCandidate]
    candidates: List[RightsizingCandidate]
    latency_target_s: Optional[float]

    @property
    def feasible(self) -> bool:
        return self.best is not None


class RightsizingAdvisor:
    """Search resource allocations with scheduling-quantization awareness."""

    def __init__(
        self,
        billing_platform: "PlatformName | str",
        scheduling_provider: Optional[str] = "aws_lambda",
        serving_platform: Optional[PlatformConfig] = None,
        memory_per_vcpu_gb: float = 1769.0 / 1024.0,
    ) -> None:
        if memory_per_vcpu_gb <= 0:
            raise ValueError("memory_per_vcpu_gb must be positive")
        self.cost_model = CostModel(
            billing_platform,
            serving_platform=serving_platform,
            scheduling_provider=scheduling_provider,
        )
        self.memory_per_vcpu_gb = memory_per_vcpu_gb

    def evaluate(
        self,
        workload: WorkloadSpec,
        vcpu_candidates: Sequence[float],
        latency_target_s: Optional[float] = None,
    ) -> RightsizingRecommendation:
        """Evaluate candidate allocations and pick the cheapest meeting the latency target."""
        if not vcpu_candidates:
            raise ValueError("at least one candidate allocation is required")
        candidates: List[RightsizingCandidate] = []
        for vcpus in vcpu_candidates:
            if vcpus <= 0:
                raise ValueError("candidate allocations must be positive")
            memory = vcpus * self.memory_per_vcpu_gb
            report = self.cost_model.invocation_cost(workload, vcpus, memory)
            meets = latency_target_s is None or report.execution_duration_s <= latency_target_s
            candidates.append(
                RightsizingCandidate(
                    alloc_vcpus=vcpus,
                    alloc_memory_gb=memory,
                    execution_duration_s=report.execution_duration_s,
                    cost_per_invocation=report.cost_per_invocation,
                    meets_latency_target=meets,
                )
            )
        feasible = [c for c in candidates if c.meets_latency_target]
        best = min(feasible, key=lambda c: c.cost_per_invocation) if feasible else None
        return RightsizingRecommendation(
            best=best, candidates=candidates, latency_target_s=latency_target_s
        )

    def jitter_risk(self, workload: WorkloadSpec, alloc_vcpus: float, window: float = 0.05) -> float:
        """Relative duration change across a small allocation window around ``alloc_vcpus``.

        A large value means the allocation sits near a quantization boundary
        (Figure 10's jumps), where small allocation or load changes produce
        large performance jitter.
        """
        if alloc_vcpus <= 0:
            raise ValueError("alloc_vcpus must be positive")
        if not 0 < window < 1:
            raise ValueError("window must be in (0, 1)")
        low = max(alloc_vcpus * (1 - window), 1e-3)
        high = min(alloc_vcpus * (1 + window), 1.0)
        d_low = self.cost_model.execution_duration_s(workload, low)
        d_high = self.cost_model.execution_duration_s(workload, high)
        d_mid = self.cost_model.execution_duration_s(workload, alloc_vcpus)
        if d_mid <= 0:
            return 0.0
        return abs(d_low - d_high) / d_mid
