"""Per-layer cost decomposition: where does each dollar of an invocation go?

The paper deliberately avoids one universal numeric breakdown (§5) because the
relative contribution of each layer depends on the workload and configuration.
Instead it gives practitioners a way to *measure and rank* cost drivers within
their own context.  This module implements that measurement: for one
invocation it computes the incremental cost added by each layer relative to an
ideal usage-based baseline:

1. **actual usage** -- what a perfect pay-per-use bill would charge (consumed
   CPU-seconds and GB-seconds at the platform's unit prices),
2. **allocation inflation** -- charging for the allocation over the wall-clock
   duration instead of consumption,
3. **scheduling effects** -- duration changes from bandwidth-control
   quantization at fractional allocations,
4. **serving overhead** -- the serving architecture's latency adder billed at
   the allocation,
5. **billing rounding** -- duration/resource granularity and minimum cutoffs,
6. **invocation fee** -- the fixed per-request charge.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.billing.calculator import BillingCalculator, InvocationBillingInput
from repro.billing.catalog import PlatformName
from repro.billing.units import ResourceKind
from repro.core.cost_model import CostModel
from repro.platform.config import PlatformConfig
from repro.workloads.functions import WorkloadSpec

__all__ = ["CostDecomposition", "decompose_invocation_cost"]


@dataclass(frozen=True)
class CostDecomposition:
    """Layer-by-layer cost contributions for one invocation (USD)."""

    platform: str
    usage_baseline: float
    allocation_inflation: float
    scheduling_effect: float
    serving_overhead: float
    billing_rounding: float
    invocation_fee: float

    @property
    def total(self) -> float:
        return (
            self.usage_baseline
            + self.allocation_inflation
            + self.scheduling_effect
            + self.serving_overhead
            + self.billing_rounding
            + self.invocation_fee
        )

    def shares(self) -> Dict[str, float]:
        """Each layer's share of the total cost (sums to 1 when total > 0)."""
        total = self.total
        if total <= 0:
            return {}
        return {
            "usage_baseline": self.usage_baseline / total,
            "allocation_inflation": self.allocation_inflation / total,
            "scheduling_effect": self.scheduling_effect / total,
            "serving_overhead": self.serving_overhead / total,
            "billing_rounding": self.billing_rounding / total,
            "invocation_fee": self.invocation_fee / total,
        }

    def ranked_drivers(self) -> List[str]:
        """Cost drivers ranked from largest to smallest contribution."""
        shares = self.shares()
        shares.pop("usage_baseline", None)
        return [name for name, _ in sorted(shares.items(), key=lambda kv: kv[1], reverse=True)]


def _resource_unit_prices(calculator: BillingCalculator) -> Dict[ResourceKind, float]:
    """Per-unit prices of the platform's billable resources (for the usage baseline)."""
    prices: Dict[ResourceKind, float] = {}
    for resource in calculator.model.allocation_resources:
        prices[resource.kind] = resource.unit_price
    for resource in calculator.model.usage_resources:
        prices.setdefault(resource.kind, resource.unit_price)
    return prices


def _cost_without_rounding(
    calculator: BillingCalculator, inputs: InvocationBillingInput
) -> float:
    """Allocation-based cost with no granularity rounding, cutoffs, or fees."""
    allocations = calculator.effective_allocations(inputs)
    usages = calculator.effective_usages(inputs)
    model = calculator.model
    # Billable time without rounding: raw execution / turnaround / CPU time.
    from repro.billing.models import BillableTime

    if model.billable_time is BillableTime.EXECUTION:
        raw_time = inputs.execution_s
    elif model.billable_time is BillableTime.TURNAROUND:
        raw_time = inputs.execution_s + inputs.init_s
    elif model.billable_time is BillableTime.CPU_TIME:
        raw_time = inputs.used_cpu_seconds
    else:
        raw_time = inputs.instance_s or inputs.execution_s
    cost = 0.0
    for resource in model.allocation_resources:
        amount = usages.get(resource.kind, 0.0) if resource.use_consumption else allocations.get(resource.kind, 0.0)
        cost += amount * raw_time * resource.unit_price
    for resource in model.usage_resources:
        cost += usages.get(resource.kind, 0.0) * resource.unit_price
    return cost


def decompose_invocation_cost(
    workload: WorkloadSpec,
    alloc_vcpus: float,
    alloc_memory_gb: float,
    billing_platform: "PlatformName | str",
    serving_platform: Optional[PlatformConfig] = None,
    scheduling_provider: Optional[str] = None,
    concurrent_requests: int = 1,
) -> CostDecomposition:
    """Decompose one invocation's cost into per-layer contributions.

    The decomposition is constructed by evaluating a ladder of increasingly
    realistic cost models and attributing each increment to the layer that was
    added.  Negative increments (e.g. scheduling overallocation *reducing*
    duration-based charges) are preserved as negative contributions.
    """
    calculator = BillingCalculator(billing_platform)
    prices = _resource_unit_prices(calculator)

    # Rung 0: ideal usage-based cost (perfect pay-per-use).
    usage_cost = (
        workload.cpu_time_s * prices.get(ResourceKind.CPU, 0.0)
        + workload.used_memory_gb
        * (workload.cpu_time_s / min(alloc_vcpus, 1.0) + workload.io_time_s)
        * prices.get(ResourceKind.MEMORY, 0.0)
    )

    # Rung 1: allocation-based billing over the ideal (reciprocal) duration,
    # no serving overhead, no rounding, no fee.
    ideal_model = CostModel(billing_platform, serving_platform=None, scheduling_provider=None)
    ideal_duration = ideal_model.execution_duration_s(workload, alloc_vcpus)
    rung1 = _cost_without_rounding(
        calculator,
        InvocationBillingInput(
            execution_s=ideal_duration,
            init_s=0.0,
            alloc_vcpus=alloc_vcpus,
            alloc_memory_gb=alloc_memory_gb,
            used_cpu_seconds=workload.cpu_time_s,
            used_memory_gb=workload.used_memory_gb,
        ),
    )

    # Rung 2: + scheduling effects (Equation 2 duration instead of reciprocal).
    sched_model = CostModel(billing_platform, serving_platform=None, scheduling_provider=scheduling_provider)
    sched_duration = sched_model.execution_duration_s(workload, alloc_vcpus)
    rung2 = _cost_without_rounding(
        calculator,
        InvocationBillingInput(
            execution_s=sched_duration,
            init_s=0.0,
            alloc_vcpus=alloc_vcpus,
            alloc_memory_gb=alloc_memory_gb,
            used_cpu_seconds=workload.cpu_time_s,
            used_memory_gb=workload.used_memory_gb,
        ),
    )

    # Rung 3: + serving overhead and contention.
    serving_model = CostModel(
        billing_platform, serving_platform=serving_platform, scheduling_provider=scheduling_provider
    )
    serving_duration = serving_model.execution_duration_s(
        workload, alloc_vcpus, concurrent_requests=concurrent_requests
    )
    rung3 = _cost_without_rounding(
        calculator,
        InvocationBillingInput(
            execution_s=serving_duration,
            init_s=0.0,
            alloc_vcpus=alloc_vcpus,
            alloc_memory_gb=alloc_memory_gb,
            used_cpu_seconds=workload.cpu_time_s,
            used_memory_gb=workload.used_memory_gb,
        ),
    )

    # Rung 4: + billing granularity, cutoffs and the invocation fee (full bill).
    report = serving_model.invocation_cost(
        workload, alloc_vcpus, alloc_memory_gb, concurrent_requests=concurrent_requests
    )
    full = report.cost_per_invocation
    fee = report.breakdown.get("invocation_fee", 0.0)
    rounding = full - fee - rung3

    return CostDecomposition(
        platform=calculator.model.platform,
        usage_baseline=usage_cost,
        allocation_inflation=rung1 - usage_cost,
        scheduling_effect=rung2 - rung1,
        serving_overhead=rung3 - rung2,
        billing_rounding=rounding,
        invocation_fee=fee,
    )
