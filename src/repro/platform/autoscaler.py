"""Concurrency/CPU-target autoscaler with a metric aggregation window (paper §3.1).

Platforms with the multi-concurrency serving model scale the number of
sandboxes based on aggregated metrics (Knative's default stable window is
60 s; GCP Cloud Run targets 60% CPU utilisation and per-instance concurrency).
Because metrics are aggregated over a window, scaling "does not begin until
about 40 s" into a traffic burst in the paper's measurement -- the aggregation
lag is the mechanism behind Figure 6 (right).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Tuple

from repro.sim.kernel import PeriodicProcess

__all__ = ["AutoscalerConfig", "Autoscaler", "AutoscalerProcess"]


@dataclass(frozen=True)
class AutoscalerConfig:
    """Scaling policy parameters.

    Attributes:
        target_cpu_utilization: desired average CPU utilisation per sandbox
            (GCP default 0.6).
        target_concurrency_fraction: desired fraction of the per-sandbox
            concurrency limit in use (Knative's default target utilisation).
        metric_window_s: aggregation window over which metrics are averaged
            before a scaling decision (Knative stable window: 60 s).
        evaluation_interval_s: how often the autoscaler re-evaluates.
        min_instances: lower bound on instance count (0 allows scale-to-zero).
        max_instances: upper bound on instance count.
        scale_down_delay_s: how long low utilisation must persist before
            scaling in (also acts as the keep-alive scale-down delay).
        panic_window_s: short window used to detect sudden load spikes
            (Knative's panic window, default 6 s).
        panic_threshold: when the short-window demand exceeds this multiple of
            the current capacity, the autoscaler scales on the short window
            immediately instead of the stable window (Knative default 2.0).
            Set to 0 to disable panic mode.
        admission_queue_weight: how many active requests one sandbox stuck in
            the fleet's *admission queue* counts as in the scale-up signal.
            Requires a feedback channel (the queue depth is read from it);
            ``0`` (the default) ignores admission backpressure entirely.
            Scale-down keeps its hysteresis: a drained queue only shrinks the
            pool after ``scale_down_delay_s`` of sustained low demand.
    """

    target_cpu_utilization: float = 0.6
    target_concurrency_fraction: float = 0.7
    metric_window_s: float = 60.0
    evaluation_interval_s: float = 2.0
    min_instances: int = 0
    max_instances: int = 1000
    scale_down_delay_s: float = 60.0
    panic_window_s: float = 6.0
    panic_threshold: float = 2.0
    admission_queue_weight: float = 0.0

    def __post_init__(self) -> None:
        if not 0 < self.target_cpu_utilization <= 1:
            raise ValueError("target_cpu_utilization must be in (0, 1]")
        if not 0 < self.target_concurrency_fraction <= 1:
            raise ValueError("target_concurrency_fraction must be in (0, 1]")
        if self.metric_window_s <= 0 or self.evaluation_interval_s <= 0:
            raise ValueError("window and evaluation interval must be positive")
        if self.min_instances < 0 or self.max_instances < max(self.min_instances, 1):
            raise ValueError("invalid instance bounds")
        if self.panic_window_s < 0 or self.panic_threshold < 0:
            raise ValueError("panic parameters must be >= 0")
        if self.admission_queue_weight < 0:
            raise ValueError("admission_queue_weight must be >= 0")


class Autoscaler:
    """Window-averaged metric autoscaler used by the platform simulator."""

    def __init__(self, config: AutoscalerConfig, max_concurrency: int, alloc_vcpus: float) -> None:
        if max_concurrency < 1:
            raise ValueError("max_concurrency must be >= 1")
        if alloc_vcpus <= 0:
            raise ValueError("alloc_vcpus must be positive")
        self.config = config
        self.max_concurrency = max_concurrency
        self.alloc_vcpus = alloc_vcpus
        #: (timestamp, total active requests, total cpu demand rate, instance count) samples.
        self._samples: Deque[Tuple[float, float, float, int]] = deque()
        self._last_scale_down_candidate: float = 0.0

    def observe(self, now_s: float, active_requests: float, busy_vcpus: float, instances: int) -> None:
        """Record one metric sample (the simulator calls this every evaluation tick)."""
        self._samples.append((now_s, float(active_requests), busy_vcpus, max(instances, 0)))
        cutoff = now_s - self.config.metric_window_s
        while self._samples and self._samples[0][0] < cutoff:
            self._samples.popleft()

    def desired_instances(self, now_s: float, current_instances: int) -> int:
        """Compute the desired instance count from window-averaged metrics."""
        cfg = self.config
        if not self._samples:
            return max(current_instances, cfg.min_instances)
        window = [s for s in self._samples if s[0] >= now_s - cfg.metric_window_s]
        if not window:
            return max(current_instances, cfg.min_instances)
        avg_active = sum(s[1] for s in window) / len(window)
        avg_busy_vcpus = sum(s[2] for s in window) / len(window)

        # Concurrency-based desired count: keep per-instance concurrency below
        # target_concurrency_fraction * max_concurrency.
        per_instance_target = cfg.target_concurrency_fraction * self.max_concurrency
        desired_by_concurrency = avg_active / per_instance_target if per_instance_target > 0 else 0.0

        # CPU-based desired count: keep per-instance CPU utilisation below target.
        per_instance_cpu_target = cfg.target_cpu_utilization * self.alloc_vcpus
        desired_by_cpu = avg_busy_vcpus / per_instance_cpu_target if per_instance_cpu_target > 0 else 0.0

        desired = max(desired_by_concurrency, desired_by_cpu)

        # Panic mode (Knative-style): a sudden spike measured over the short
        # window overrides the stable-window decision, so the platform reacts
        # within seconds rather than a full aggregation window.  CPU-target
        # scaling alone reacts slowly under overload because per-instance CPU
        # saturates at the allocation -- exactly the lag Figure 6 measures.
        if cfg.panic_threshold > 0 and cfg.panic_window_s > 0:
            panic_samples = [s for s in window if s[0] >= now_s - cfg.panic_window_s]
            if panic_samples:
                panic_active = sum(s[1] for s in panic_samples) / len(panic_samples)
                capacity = max(current_instances, 1) * per_instance_target
                if capacity > 0 and panic_active > cfg.panic_threshold * capacity:
                    desired = max(desired, panic_active / per_instance_target)

        desired_count = max(int(-(-desired // 1)), cfg.min_instances)  # ceil
        desired_count = min(desired_count, cfg.max_instances)

        if desired_count < current_instances:
            # Scale-in is damped by the scale-down delay: remember when the
            # desire to shrink first appeared and only act after the delay.
            if self._last_scale_down_candidate == 0.0:
                self._last_scale_down_candidate = now_s
                return current_instances
            if now_s - self._last_scale_down_candidate < cfg.scale_down_delay_s:
                return current_instances
        else:
            self._last_scale_down_candidate = 0.0
        return desired_count


class AutoscalerProcess(PeriodicProcess):
    """The autoscaler as a polled kernel process.

    Instead of the simulator pre-scheduling one heap event per evaluation tick
    over the whole horizon, the process computes its own next evaluation time
    (a fixed evaluation-interval grid, see
    :class:`repro.sim.kernel.PeriodicProcess`) and the kernel interleaves it
    with heap events.  The callback is called once per tick with the
    simulation time; the owning simulator supplies it and reads its own pool
    state there.  The same instance works in a standalone simulation and in
    an open-ended cluster co-simulation.
    """
