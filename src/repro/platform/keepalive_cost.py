"""Provider-side cost of keep-alive (paper §3.3).

"Function keep-alive has a direct impact on provider cost, as idle functions
can hold active resources or reserved capacity, affecting deployment density.
These costs are ultimately passed on to users through per-unit resource
pricing or invocation fees."

This module quantifies that: given a traffic pattern (inter-arrival
distribution) and a keep-alive policy, it computes the expected idle
resource-seconds the provider holds per request, the resulting cold-start
probability, and -- priced at the platform's own unit prices -- the implied
per-request keep-alive cost the provider must recover.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np

from repro.billing.pricing import PLATFORM_PRICES, PlatformPrice, decompose_memory_embedded_price
from repro.billing.catalog import PlatformName
from repro.platform.keepalive import KeepAlivePolicy

__all__ = ["KeepAliveCostEstimate", "estimate_keepalive_cost", "keepalive_policy_comparison"]


@dataclass(frozen=True)
class KeepAliveCostEstimate:
    """Expected keep-alive footprint and implied provider cost per request."""

    policy_label: str
    mean_idle_s_per_request: float
    idle_vcpu_seconds_per_request: float
    idle_gb_seconds_per_request: float
    cold_start_probability: float
    implied_cost_per_request: float

    def as_row(self) -> Dict[str, float]:
        return {
            "policy": self.policy_label,  # type: ignore[dict-item]
            "mean_idle_s_per_request": self.mean_idle_s_per_request,
            "idle_vcpu_seconds_per_request": self.idle_vcpu_seconds_per_request,
            "idle_gb_seconds_per_request": self.idle_gb_seconds_per_request,
            "cold_start_probability": self.cold_start_probability,
            "implied_cost_per_request": self.implied_cost_per_request,
        }


def _unit_prices(platform: PlatformName) -> Dict[str, float]:
    price: PlatformPrice = PLATFORM_PRICES[platform]
    if price.memory_based_billing:
        implied = decompose_memory_embedded_price(price.memory_per_gb_second)
        return {
            "cpu": implied["implied_cpu_per_vcpu_second"],
            "memory": implied["implied_memory_per_gb_second"],
        }
    return {"cpu": price.cpu_per_vcpu_second, "memory": price.memory_per_gb_second}


def estimate_keepalive_cost(
    policy: KeepAlivePolicy,
    idle_gaps_s: Sequence[float],
    alloc_vcpus: float,
    alloc_memory_gb: float,
    pricing_platform: PlatformName = PlatformName.AWS_LAMBDA,
    policy_label: str = "policy",
) -> KeepAliveCostEstimate:
    """Estimate idle resources held per request for a sequence of inter-request idle gaps.

    For each gap the sandbox stays resident for ``min(gap, keep-alive)``; the
    idle CPU/memory held during that window follow the policy's Table 2
    behaviour.  Gaps longer than the keep-alive window produce a cold start on
    the next request.
    """
    if not idle_gaps_s:
        raise ValueError("at least one idle gap is required")
    if alloc_vcpus <= 0 or alloc_memory_gb <= 0:
        raise ValueError("allocations must be positive")
    idle_cpu, idle_memory = policy.idle_resources(alloc_vcpus, alloc_memory_gb)
    prices = _unit_prices(pricing_platform)

    held_durations = []
    cold = 0
    for gap in idle_gaps_s:
        if gap < 0:
            raise ValueError("idle gaps must be >= 0")
        # Expected residency under the opportunistic window: the sandbox is
        # held until either the next request or the (midpoint) keep-alive expiry.
        expected_keep_alive = 0.5 * (policy.min_keep_alive_s + policy.max_keep_alive_s)
        held_durations.append(min(gap, expected_keep_alive))
        cold += policy.cold_start_probability(gap)

    mean_idle = float(np.mean(held_durations))
    idle_vcpu_seconds = idle_cpu * mean_idle
    idle_gb_seconds = idle_memory * mean_idle
    implied_cost = idle_vcpu_seconds * prices["cpu"] + idle_gb_seconds * prices["memory"]
    return KeepAliveCostEstimate(
        policy_label=policy_label,
        mean_idle_s_per_request=mean_idle,
        idle_vcpu_seconds_per_request=idle_vcpu_seconds,
        idle_gb_seconds_per_request=idle_gb_seconds,
        cold_start_probability=cold / len(idle_gaps_s),
        implied_cost_per_request=implied_cost,
    )


def keepalive_policy_comparison(
    policies: Dict[str, KeepAlivePolicy],
    idle_gaps_s: Sequence[float],
    alloc_vcpus: float = 1.0,
    alloc_memory_gb: float = 1.0,
    pricing_platform: PlatformName = PlatformName.AWS_LAMBDA,
) -> Dict[str, KeepAliveCostEstimate]:
    """Estimate the keep-alive cost / cold-start trade-off for several policies at once."""
    return {
        label: estimate_keepalive_cost(
            policy,
            idle_gaps_s,
            alloc_vcpus,
            alloc_memory_gb,
            pricing_platform=pricing_platform,
            policy_label=label,
        )
        for label, policy in policies.items()
    }
