"""Keep-alive policies and resource allocation behaviour during keep-alive (paper §3.3).

The paper measures, per platform, (a) how long an idle sandbox is kept alive
before the next invocation becomes a cold start (Figure 9) and (b) what the
platform does with the sandbox's CPU and memory while it idles (Table 2):

- AWS Lambda freezes the microVM (CPU and memory deallocated) and keeps it for
  roughly 300-360 s.
- Azure Functions Consumption keeps the sandbox running with full allocation
  but uses a shorter, opportunistic keep-alive window (~120-360 s, longer when
  the function has scaled out).
- GCP scales the sandbox's CPU down to ~0.01 vCPU during keep-alive and keeps
  instances for up to ~900 s.
- Cloudflare Workers only caches code/bytecode; there is no resident sandbox.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

import numpy as np

__all__ = ["KeepAliveResourceBehavior", "KeepAlivePolicy"]


class KeepAliveResourceBehavior(str, enum.Enum):
    """What happens to the sandbox's resources during the keep-alive phase (Table 2)."""

    #: Freeze / snapshot the sandbox: CPU and memory are deallocated (AWS Lambda).
    FREEZE_DEALLOCATE = "freeze_deallocate"
    #: Scale CPU down to a tiny share, keep memory resident (GCP request-based billing).
    SCALE_DOWN_CPU = "scale_down_cpu"
    #: Keep the sandbox running with its full allocation (Azure Consumption).
    FULL_ALLOCATION = "full_allocation"
    #: Only cache the code artifact; nothing stays resident (Cloudflare Workers).
    CODE_CACHE = "code_cache"


@dataclass(frozen=True)
class KeepAlivePolicy:
    """Keep-alive window and resource behaviour of one platform.

    The keep-alive duration is modelled as a window ``[min_s, max_s]``:
    sandboxes idle for less than ``min_s`` are always warm, sandboxes idle for
    more than ``max_s`` are always cold, and in between the platform behaves
    opportunistically (modelled as a linear cold-start probability ramp, which
    matches the measured probability-versus-idle-time curves of Figure 9).

    Attributes:
        min_keep_alive_s: largest idle time with zero observed cold starts.
        max_keep_alive_s: smallest idle time with (almost) certain cold starts.
        resource_behavior: what the platform does with resources while idle.
        keep_alive_cpu_vcpus: CPU left allocated during keep-alive (e.g. ~0.01
            vCPU on GCP, the full allocation on Azure, zero on AWS).
        keep_alive_memory_fraction: fraction of the memory allocation that
            stays resident during keep-alive.
        graceful_shutdown: whether the platform delivers SIGTERM and waits for
            handlers when terminating the sandbox after keep-alive.
        scale_out_extension_s: extra keep-alive the platform grants functions
            that have scaled out to multiple instances (observed on Azure).
    """

    min_keep_alive_s: float
    max_keep_alive_s: float
    resource_behavior: KeepAliveResourceBehavior
    keep_alive_cpu_vcpus: float = 0.0
    keep_alive_memory_fraction: float = 0.0
    graceful_shutdown: bool = False
    scale_out_extension_s: float = 0.0

    def __post_init__(self) -> None:
        if self.min_keep_alive_s < 0 or self.max_keep_alive_s < 0:
            raise ValueError("keep-alive durations must be >= 0")
        if self.max_keep_alive_s < self.min_keep_alive_s:
            raise ValueError("max_keep_alive_s must be >= min_keep_alive_s")
        if self.keep_alive_cpu_vcpus < 0:
            raise ValueError("keep_alive_cpu_vcpus must be >= 0")
        if not 0 <= self.keep_alive_memory_fraction <= 1:
            raise ValueError("keep_alive_memory_fraction must be in [0, 1]")

    # ------------------------------------------------------------------
    # Cold-start probability (Figure 9)
    # ------------------------------------------------------------------

    def cold_start_probability(self, idle_s: float, scaled_out_instances: int = 1) -> float:
        """Probability that a request arriving after ``idle_s`` of idleness hits a cold start."""
        if idle_s < 0:
            raise ValueError("idle_s must be >= 0")
        max_keep_alive = self.max_keep_alive_s
        if scaled_out_instances > 1:
            max_keep_alive += self.scale_out_extension_s
        if idle_s <= self.min_keep_alive_s:
            return 0.0
        if idle_s >= max_keep_alive:
            return 1.0
        span = max_keep_alive - self.min_keep_alive_s
        if span <= 0:
            return 1.0
        return (idle_s - self.min_keep_alive_s) / span

    def sample_keep_alive_s(self, rng: np.random.Generator, scaled_out_instances: int = 1) -> float:
        """Draw the keep-alive duration one particular sandbox will get."""
        max_keep_alive = self.max_keep_alive_s
        if scaled_out_instances > 1:
            max_keep_alive += self.scale_out_extension_s
        if max_keep_alive <= self.min_keep_alive_s:
            return max_keep_alive
        return float(rng.uniform(self.min_keep_alive_s, max_keep_alive))

    # ------------------------------------------------------------------
    # Idle resource footprint (provider-side cost of keep-alive)
    # ------------------------------------------------------------------

    def idle_resources(self, alloc_vcpus: float, alloc_memory_gb: float) -> "tuple[float, float]":
        """(vCPUs, memory GB) held by one idle sandbox under this policy."""
        if self.resource_behavior is KeepAliveResourceBehavior.FREEZE_DEALLOCATE:
            return 0.0, 0.0
        if self.resource_behavior is KeepAliveResourceBehavior.CODE_CACHE:
            return 0.0, 0.0
        if self.resource_behavior is KeepAliveResourceBehavior.SCALE_DOWN_CPU:
            return min(self.keep_alive_cpu_vcpus, alloc_vcpus), alloc_memory_gb
        # FULL_ALLOCATION
        return alloc_vcpus, alloc_memory_gb * max(self.keep_alive_memory_fraction, 1.0)

    def describe(self) -> dict:
        """One row of the paper's Table 2."""
        return {
            "resource_behavior": self.resource_behavior.value,
            "min_keep_alive_s": self.min_keep_alive_s,
            "max_keep_alive_s": self.max_keep_alive_s,
            "keep_alive_cpu_vcpus": self.keep_alive_cpu_vcpus,
            "graceful_shutdown": self.graceful_shutdown,
        }
