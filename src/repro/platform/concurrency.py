"""Concurrency models and the contention penalty of multi-concurrency sandboxes (paper §3.1).

Two serving models exist on public platforms:

- **single-concurrency** (AWS Lambda, Cloudflare Workers): a sandbox serves at
  most one request at a time, so execution duration is independent of load;
- **multi-concurrency** (GCP / Knative / IBM): up to ``max_concurrency``
  requests share one sandbox (Knative's default container concurrency is 80 on
  GCP and 100 on IBM), so concurrent CPU-bound requests contend for the
  sandbox's vCPUs, inflating both execution duration and -- under wall-clock
  billing -- cost (the paper's "dual penalty").

The contention model is processor sharing with a configurable inefficiency
factor for context switches and cache interference, which the paper notes make
real slowdowns worse than the ideal ``n / vcpus`` factor.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ConcurrencyModel", "ContentionModel"]


@dataclass(frozen=True)
class ConcurrencyModel:
    """How many requests one sandbox may serve concurrently.

    Attributes:
        max_concurrency: platform-level admission limit per sandbox (Knative
            container concurrency; GCP default 80, IBM default 100).
        runtime_workers: how many admitted requests the language runtime inside
            the sandbox actually executes in parallel (e.g. the worker/thread
            pool of functions-framework or the Azure Functions host).  Requests
            admitted beyond this wait inside the sandbox; that wait is part of
            end-to-end latency but not of the provider-reported execution
            duration.  ``None`` means every admitted request executes.
    """

    max_concurrency: int = 1
    runtime_workers: "int | None" = None

    def __post_init__(self) -> None:
        if self.max_concurrency < 1:
            raise ValueError("max_concurrency must be >= 1")
        if self.runtime_workers is not None and self.runtime_workers < 1:
            raise ValueError("runtime_workers must be >= 1 when set")

    @property
    def is_single(self) -> bool:
        return self.max_concurrency == 1

    @property
    def effective_workers(self) -> int:
        """Number of requests that can make progress simultaneously in one sandbox."""
        if self.runtime_workers is None:
            return self.max_concurrency
        return min(self.runtime_workers, self.max_concurrency)

    @classmethod
    def single(cls) -> "ConcurrencyModel":
        """Single-concurrency serving (AWS Lambda, Cloudflare Workers)."""
        return cls(max_concurrency=1)

    @classmethod
    def multi(cls, max_concurrency: int = 80, runtime_workers: "int | None" = None) -> "ConcurrencyModel":
        """Multi-concurrency serving with the given per-sandbox limit (GCP default: 80)."""
        return cls(max_concurrency=max_concurrency, runtime_workers=runtime_workers)


@dataclass(frozen=True)
class ContentionModel:
    """Processor-sharing contention inside one sandbox.

    ``n`` concurrent single-threaded requests on a sandbox with ``c`` vCPUs
    each progress at rate ``min(1, c / n) * efficiency(n)`` vCPUs, where
    ``efficiency(n) = 1 / (1 + overhead_per_peer * (n - 1))`` models the extra
    context-switch and cache-interference cost of time-sharing.
    """

    overhead_per_peer: float = 0.03
    #: Largest efficiency loss allowed (guards against pathological settings).
    min_efficiency: float = 0.25

    def __post_init__(self) -> None:
        if self.overhead_per_peer < 0:
            raise ValueError("overhead_per_peer must be >= 0")
        if not 0 < self.min_efficiency <= 1:
            raise ValueError("min_efficiency must be in (0, 1]")

    def efficiency(self, concurrent_requests: int) -> float:
        """CPU efficiency with ``concurrent_requests`` active requests in the sandbox."""
        if concurrent_requests <= 0:
            raise ValueError("concurrent_requests must be positive")
        eff = 1.0 / (1.0 + self.overhead_per_peer * (concurrent_requests - 1))
        return max(eff, self.min_efficiency)

    def per_request_rate(self, concurrent_requests: int, alloc_vcpus: float) -> float:
        """vCPUs of progress each of ``concurrent_requests`` requests makes per second."""
        if alloc_vcpus <= 0:
            raise ValueError("alloc_vcpus must be positive")
        if concurrent_requests <= 0:
            raise ValueError("concurrent_requests must be positive")
        fair_share = alloc_vcpus / concurrent_requests
        return min(1.0, fair_share) * self.efficiency(concurrent_requests)

    def slowdown(self, concurrent_requests: int, alloc_vcpus: float) -> float:
        """Execution-duration multiplier relative to an uncontended request."""
        uncontended = min(1.0, alloc_vcpus)
        return uncontended / self.per_request_rate(concurrent_requests, alloc_vcpus)
