"""The platform simulator: routes requests to sandboxes and tracks cost-relevant metrics.

This is a discrete-event simulation of the serving layer of one function on
one platform, built on the shared :mod:`repro.sim` kernel.  It combines the
pieces defined elsewhere in the package:

- the concurrency model decides how many requests may share a sandbox,
- the contention model stretches execution under concurrent load,
- the serving-architecture model adds per-request overhead,
- the keep-alive policy decides how long idle sandboxes survive,
- the autoscaler (when configured) grows and shrinks the instance pool from
  window-averaged metrics, reproducing the scaling lag of Figure 6.  It runs
  as a *polled kernel process* (it computes its own next evaluation tick)
  rather than being called inline, so it co-simulates cleanly when several
  functions share one kernel.

Event ordering and the clock live in :class:`repro.sim.kernel.SimulationKernel`;
instrumentation flows over a :class:`repro.sim.events.EventBus`, so metrics
collection is just the default subscriber -- tracers and custom probes can
subscribe to the same bus without touching the simulator.  The simulator
publishes the full typed sandbox lifecycle (cold start, busy, idle,
keep-alive expiry, eviction), which is what the fleet placement layer
(:mod:`repro.cluster.fleet`) and the live cost meter
(:mod:`repro.billing.meter`) consume.
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import Deque, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.platform.config import FunctionConfig, PlatformConfig
from repro.platform.metrics import FailedRequest, RequestOutcome, SimulationMetrics
from repro.platform.autoscaler import Autoscaler, AutoscalerProcess
from repro.platform.sandbox import ActiveRequest, Sandbox, SandboxState
from repro.sim.arrivals import ArrivalSource, ArrivalStream
from repro.sim.events import (
    EventBus,
    InstanceCountChanged,
    KeepAliveExpired,
    RequestArrived,
    RequestCompleted,
    RequestDenied,
    RequestExecuting,
    RequestFailed,
    SandboxAdmitted,
    SandboxBusy,
    SandboxColdStart,
    SandboxEvicted,
    SandboxIdle,
    SimEvent,
)
from repro.sim.feedback import AdmissionState, FeedbackChannel
from repro.sim.kernel import Event, SimulationKernel
from repro.sim.retry import RetryLoop
from repro.tenancy.admission import AdmissionDecision

__all__ = ["PlatformSimulator", "RequestOutcome", "SimulationMetrics"]

# Hoisted enum members: the arrival hot path compares these per request.
_ADMIT = AdmissionDecision.ADMIT
_DENY = AdmissionDecision.DENY

_EPS = 1e-9
_INF = float("inf")

#: Event kinds the simulator schedules on the kernel; the autoscaler is a
#: polled kernel process (:class:`repro.platform.autoscaler.AutoscalerProcess`)
#: rather than a pre-scheduled heap event.
_EVENT_KINDS = ("arrival", "sandbox_ready", "completion", "keepalive_expire")


class PlatformSimulator:
    """Simulates one function deployed on one platform configuration.

    By default each simulator owns a private :class:`SimulationKernel`.  Pass
    a shared ``kernel`` (plus a fleet-unique ``name``) to co-simulate several
    functions in one event loop -- the cluster co-simulation of
    :mod:`repro.cluster.cosim`.  The ``name`` namespaces the simulator's event
    kinds, sandbox names and request ids so co-simulated simulators never
    collide on the shared kernel or bus.

    Pass a :class:`~repro.sim.feedback.FeedbackChannel` to close the state
    loop with the other layers: the simulator then (a) stretches busy times by
    the channel's combined service rate (re-read at every admit/completion
    event, so the CPU-bandwidth scheduler's throttling factor reaches request
    latency), and (b) gates sandbox readiness on the fleet's admission
    outcome -- a queued cold start defers ``sandbox_ready`` by its measured
    queue wait, and a rejected one fails its pending request with a typed
    :class:`~repro.platform.metrics.FailedRequest`.  Without a channel (the
    default), behaviour is byte-identical to the pre-feedback simulator.

    Pass a :class:`~repro.sim.retry.RetryLoop` to model clients that retry:
    the simulator then stamps every failure's ``gave_up`` flag from the
    loop's policy (so metrics agree with what the loop re-injects), and the
    loop feeds retries back in through :meth:`inject_retry` -- a fresh
    ``arrival`` kernel event carrying the attempt count and cumulative
    backoff, which re-enters routing, cold-start and fleet admission gating
    exactly like an organic arrival.  Without a loop (the default) every
    failure is terminal and behaviour is byte-identical to the pre-retry
    simulator.

    Pass an ``admission`` controller (plus the ``tenant`` this simulator's
    deployment belongs to) to meter arrivals against the tenancy layer's
    per-tenant credit accounts *before* routing: denied arrivals fail with a
    typed :class:`~repro.sim.events.RequestDenied` (terminal, no capacity
    burned), credit-queued arrivals park in the controller until refill and
    re-enter routing via :meth:`resume_admission`.  Without a controller (the
    default) arrivals take exactly the pre-tenancy path.
    """

    def __init__(
        self,
        platform: PlatformConfig,
        function: FunctionConfig,
        seed: int = 0,
        bus: Optional[EventBus] = None,
        kernel: Optional[SimulationKernel] = None,
        name: str = "",
        feedback: Optional[FeedbackChannel] = None,
        retry: Optional[RetryLoop] = None,
        obs=None,
        emit_spans: bool = False,
        retain_outcomes: bool = True,
        tenant: str = "",
        admission=None,
    ) -> None:
        self.platform = platform
        self.function = function
        if kernel is not None and not name:
            raise ValueError("co-simulating on a shared kernel requires a unique simulator name")
        self.name = name
        self._id_prefix = f"{name}/" if name else ""
        self._rng = np.random.default_rng(seed)
        self._request_counter = itertools.count()
        self._sandbox_counter = itertools.count()
        self._kernel = kernel if kernel is not None else SimulationKernel()
        for kind in _EVENT_KINDS:
            self._kernel.on(self._kind(kind), getattr(self, f"_handle_{kind}"))
        # Namespaced kind strings are per-simulator constants; the hot paths
        # schedule thousands of these, so skip the per-call f-string.
        self._kind_arrival = self._kind("arrival")
        self._kind_sandbox_ready = self._kind("sandbox_ready")
        self._kind_completion = self._kind("completion")
        self._kind_keepalive_expire = self._kind("keepalive_expire")
        #: Live sandbox registry: terminated sandboxes are discarded on the
        #: spot (:meth:`_discard_sandbox`), so routing scans stay O(alive)
        #: and memory stays bounded over million-request runs.
        self._sandboxes: Dict[str, Sandbox] = {}
        #: Ingress FIFO: (arrival time, request id, attempts, retry wait,
        #: first-attempt arrival time).
        self._queue: Deque[Tuple[float, str, int, float, float]] = deque()
        #: sandbox -> waiting (arrival time, request id, attempts, retry
        #: wait, first-attempt arrival time).
        self._pending_cold: Dict[str, List[Tuple[float, str, int, float, float]]] = {}
        self._completion_version: Dict[str, int] = {}
        #: sandbox -> fire time of its single pending keep-alive expiry check.
        self._keepalive_pending: Dict[str, float] = {}
        self.metrics = SimulationMetrics(retain_outcomes=retain_outcomes)
        # Each simulator owns its instrumentation bus, so its metrics only ever
        # see its own events.  A caller-supplied bus becomes a downstream
        # observer: every event is forwarded to it, letting one external bus
        # watch several co-simulated simulators without cross-contaminating
        # their metrics.
        self._feedback = feedback
        self._retry = retry
        self._tenant = tenant
        self._admission = admission
        # Span emission (RequestArrived / RequestExecuting markers) is gated:
        # without an observer these per-request publishes are pure overhead.
        # A co-simulation host sets emit_spans for its shared-bus collector;
        # a standalone obs= attaches to this simulator's own kernel and bus.
        self._obs = obs
        self._emit_spans = emit_spans or obs is not None
        self.bus = EventBus()
        self.bus.subscribe(RequestCompleted, self._record_outcome)
        self.bus.subscribe(RequestFailed, self._record_failure)
        self.bus.subscribe(InstanceCountChanged, self._record_instances)
        if bus is not None:
            self.bus.subscribe(SimEvent, bus.publish)
        if obs is not None:
            obs.attach(self._kernel, self.bus)
        self._autoscaler: Optional[Autoscaler] = None
        if platform.autoscaler is not None:
            self._autoscaler = Autoscaler(
                platform.autoscaler,
                max_concurrency=platform.concurrency.max_concurrency,
                alloc_vcpus=function.alloc_vcpus,
            )
            self._kernel.add_process(
                AutoscalerProcess(platform.autoscaler.evaluation_interval_s, self._autoscale_tick)
            )

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    @property
    def kernel(self) -> SimulationKernel:
        """The underlying event kernel (exposed for co-simulation and tests)."""
        return self._kernel

    def _kind(self, kind: str) -> str:
        """Namespace an event kind with the simulator name (shared-kernel safety)."""
        return f"{self.name}:{kind}" if self.name else kind

    def schedule_arrivals(
        self,
        arrivals: Union[Sequence[float], ArrivalSource, ArrivalStream],
        horizon_s: Optional[float] = None,
    ) -> float:
        """Schedule request arrivals on the kernel; returns the run horizon.

        Does not execute anything -- a co-simulation host schedules arrivals
        for every simulator sharing the kernel and then runs the kernel once.

        ``arrivals`` may be an explicit time sequence (each scheduled as its
        own kernel event up front), an :class:`~repro.sim.arrivals.ArrivalSource`
        or a pre-built :class:`~repro.sim.arrivals.ArrivalStream`: sources are
        generated in vectorized chunks and *streamed* into the kernel with
        their tie-break ranks reserved up front, which is byte-identical to
        eager scheduling while bounding heap memory at millions of requests.
        """
        if isinstance(arrivals, (ArrivalSource, ArrivalStream)):
            stream = arrivals if isinstance(arrivals, ArrivalStream) else ArrivalStream(arrivals)
            if horizon_s is None:
                tail = self.function.service_time_s * 50 + 10.0
                horizon_s = stream.source.last_arrival_s() + tail
            stream.attach(self._kernel, self._kind_arrival)
            return horizon_s
        arrivals = sorted(arrivals)
        if horizon_s is None:
            tail = self.function.service_time_s * 50 + 10.0
            horizon_s = (arrivals[-1] if arrivals else 0.0) + tail
        for arrival in arrivals:
            self._kernel.schedule(arrival, self._kind_arrival)
        return horizon_s

    def run(self, arrivals: Sequence[float], horizon_s: Optional[float] = None) -> SimulationMetrics:
        """Simulate the given request arrival times; returns collected metrics."""
        horizon_s = self.schedule_arrivals(arrivals, horizon_s)
        self._kernel.run(until=horizon_s + _EPS)
        self.metrics.pending_requests = self.pending_request_count
        if self._obs is not None:
            self._obs.finalize(horizon_s)
        return self.metrics

    @property
    def pending_request_count(self) -> int:
        """Requests admitted to the system but not yet executing anywhere.

        Ingress-queued requests plus requests parked behind a cold-starting
        sandbox (including sandboxes whose fleet admission is still queued
        under the feedback layer).  A co-simulation host snapshots this into
        the metrics when the shared run ends, so backpressure that outlives
        the horizon is reported instead of silently censored.

        With the tenancy layer attached, requests parked in the tenant's
        credit queue count too: they arrived but are neither executing,
        completed, failed nor denied, so the conservation law needs them
        here.
        """
        pending = len(self._queue) + sum(len(waiting) for waiting in self._pending_cold.values())
        if self._admission is not None:
            pending += self._admission.queued_count(self.name)
        return pending

    @property
    def in_flight_request_count(self) -> int:
        """Requests admitted into sandboxes and not yet completed.

        Together with :attr:`pending_request_count`, completed and failed
        requests this closes the arrival conservation law
        (``arrivals == completed + failed + pending + in-flight``) at any
        instant -- the invariant the cross-layer conservation test suite
        checks on every configuration.
        """
        return sum(s.concurrency for s in self._alive_sandboxes())

    # ------------------------------------------------------------------
    # Event plumbing and instrumentation
    # ------------------------------------------------------------------

    @property
    def _now(self) -> float:
        return self._kernel.now

    def _record_outcome(self, event: RequestCompleted) -> None:
        self.metrics.record(event.outcome)

    def _record_failure(self, event: RequestFailed) -> None:
        self.metrics.record_failure(event.outcome)

    def _record_instances(self, event: InstanceCountChanged) -> None:
        self.metrics.record_instances(event.time_s, event.count)

    def _publish_instance_count(self) -> None:
        self.bus.publish(InstanceCountChanged(self._now, self._instance_count()))

    def _alive_sandboxes(self) -> List[Sandbox]:
        return [s for s in self._sandboxes.values() if s.state is not SandboxState.TERMINATED]

    def _instance_count(self) -> int:
        return len(self._alive_sandboxes())

    # ------------------------------------------------------------------
    # Arrival and routing
    # ------------------------------------------------------------------

    def _handle_arrival(self, event: Event) -> None:
        request_id = f"{self._id_prefix}req-{next(self._request_counter):07d}"
        # Organic arrivals have an empty payload (the hot path skips every
        # dict lookup); retry re-injections (inject_retry) carry their attempt
        # metadata, and chunk-boundary arrivals from a streamed source carry
        # the stream to refill.
        data = event.data
        now = self._now
        if data:
            attempts = int(data.get("attempts", 1))
            retry_wait_s = float(data.get("retry_wait_s", 0.0))
            # Retry re-injections carry the logical request's first-attempt
            # arrival time; organic and chunk-boundary arrivals start here.
            origin_s = float(data.get("origin_s", 0.0)) or now
            stream = data.get("stream")
            if stream is not None:
                # Refill synchronously, inside this event: the next chunk is
                # on the heap before the kernel can pop anything after it,
                # which is what keeps streaming byte-identical to eager
                # scheduling.
                stream.push_next_chunk()
        else:
            attempts = 1
            retry_wait_s = 0.0
            origin_s = now
        self.metrics.record_arrival(attempts)
        if self._emit_spans:
            self.bus.publish(
                RequestArrived(
                    now,
                    request_id,
                    function_name=self.function.name,
                    attempts=attempts,
                    retry_wait_s=retry_wait_s,
                    parent_id=str(data.get("parent_id", "")),
                    tenant=self._tenant,
                )
            )
        if self._admission is not None:
            # Credit metering happens before any capacity is touched.  A
            # denial is terminal (a throttling response, never retried); a
            # queued arrival parks in the controller and re-enters through
            # resume_admission() when the tenant's bucket refills.
            decision = self._admission.admit(
                self.name, now, (request_id, now, attempts, retry_wait_s, origin_s)
            )
            if decision is not _ADMIT:
                if decision is _DENY:
                    self._deny_request(request_id)
                return
        self._route(
            request_id, now, attempts=attempts, retry_wait_s=retry_wait_s, origin_s=origin_s
        )

    def resume_admission(
        self,
        request_id: str,
        arrival_s: float,
        attempts: int,
        retry_wait_s: float,
        origin_s: float,
    ) -> None:
        """Route a credit-released request with its original arrival metadata.

        Called by the :class:`~repro.tenancy.admission.AdmissionController`
        from inside its credit-release kernel event.  ``arrival_s`` is the
        arrival that was parked, so the credit wait is visible in the
        request's latency (and SLO attainment) like any other queueing delay.
        """
        self._route(
            request_id, arrival_s, attempts=attempts, retry_wait_s=retry_wait_s,
            origin_s=origin_s,
        )

    def _deny_request(self, request_id: str) -> None:
        """Record and publish a credit denial (terminal; nothing was routed)."""
        self.metrics.record_denied()
        self.bus.publish(
            RequestDenied(
                self._now,
                request_id,
                tenant=self._tenant,
                function_name=self.function.name,
                reason="credits",
            )
        )

    def inject_retry(
        self,
        delay_s: float,
        attempts: int,
        retry_wait_s: float,
        parent_id: str = "",
        origin_s: float = 0.0,
    ) -> None:
        """Re-inject a failed request as a fresh arrival ``delay_s`` from now.

        Called by the :class:`~repro.sim.retry.RetryLoop` from inside the
        failing event's bus publish.  The arrival gets a new request id from
        the same counter as organic traffic and re-enters the full routing /
        cold-start / fleet-admission path, so retry load experiences -- and
        adds to -- the same backpressure that failed it.  ``parent_id`` (the
        failed attempt's request id) rides on the kernel event so the trace
        layer can link the retry chain; it does not affect simulation state.
        ``origin_s`` (the first attempt's arrival time) rides along so
        deadline-bounded retries and SLO attainment measure from the logical
        request's birth.
        """
        self._kernel.schedule_in(
            delay_s,
            self._kind_arrival,
            {
                "attempts": attempts,
                "retry_wait_s": retry_wait_s,
                "parent_id": parent_id,
                "origin_s": origin_s,
            },
        )

    def _route(
        self,
        request_id: str,
        arrival_s: float,
        attempts: int = 1,
        retry_wait_s: float = 0.0,
        origin_s: float = 0.0,
    ) -> None:
        sandbox = self._pick_sandbox()
        if sandbox is not None:
            self._admit(sandbox, request_id, arrival_s, cold=False,
                        attempts=attempts, retry_wait_s=retry_wait_s, origin_s=origin_s)
            return
        if self.platform.concurrency.is_single or not self._alive_sandboxes():
            # Single-concurrency platforms provision a fresh sandbox per excess
            # request; multi-concurrency platforms also cold-start when scaled
            # to zero.
            sandbox = self._create_sandbox()
            if sandbox.state is SandboxState.TERMINATED:
                # The feedback layer reported the fleet rejected this sandbox's
                # admission; the request it was provisioned for fails instead
                # of waiting for a readiness that will never come.
                self._fail_request(
                    request_id, arrival_s, reason="admission_rejected",
                    sandbox_name=sandbox.name, attempts=attempts, retry_wait_s=retry_wait_s,
                    origin_s=origin_s,
                )
                return
            self._pending_cold.setdefault(sandbox.name, []).append(
                (arrival_s, request_id, attempts, retry_wait_s, origin_s)
            )
            return
        # Multi-concurrency: all instances are at their concurrency limit; the
        # request queues at the ingress until capacity frees or the autoscaler
        # adds instances.
        self._queue.append((arrival_s, request_id, attempts, retry_wait_s, origin_s))

    def _pick_sandbox(self) -> Optional[Sandbox]:
        """Choose a ready sandbox with available concurrency (fewest active requests).

        Single allocation-free pass; ties on concurrency keep the first
        candidate in name order, matching the old
        ``min(candidates, key=(concurrency, name))`` selection exactly.
        """
        limit = self.platform.concurrency.max_concurrency
        ready_cutoff = self._now + _EPS
        best: Optional[Sandbox] = None
        best_concurrency = 0
        for sandbox in self._sandboxes.values():
            state = sandbox.state
            if state is not SandboxState.IDLE and state is not SandboxState.BUSY:
                continue
            if sandbox.ready_s > ready_cutoff:
                continue
            concurrency = sandbox.concurrency
            if concurrency >= limit:
                continue
            if (
                best is None
                or concurrency < best_concurrency
                or (concurrency == best_concurrency and sandbox.name < best.name)
            ):
                best = sandbox
                best_concurrency = concurrency
        return best

    def _create_sandbox(self) -> Sandbox:
        init_duration = self.platform.placement_delay_s + self.function.init_duration_s
        # Per-simulator, zero-padded names (prefixed with the simulator name in
        # a co-simulation): runs are reproducible regardless of how many
        # sandboxes other simulations in this process created, and
        # lexicographic tie-breaks in `_pick_sandbox` match creation order.
        sandbox = Sandbox(
            name=f"{self._id_prefix}sandbox-{next(self._sandbox_counter):06d}",
            function_name=self.function.name,
            alloc_vcpus=self.function.alloc_vcpus,
            alloc_memory_gb=self.function.alloc_memory_gb,
            contention=self.platform.contention,
            created_s=self._now,
            init_duration_s=init_duration,
            runtime_workers=self.platform.concurrency.effective_workers,
        )
        self._sandboxes[sandbox.name] = sandbox
        self._completion_version[sandbox.name] = 0
        if self._feedback is None:
            self._kernel.schedule_in(
                init_duration, self._kind_sandbox_ready, {"sandbox": sandbox.name}
            )
        self.bus.publish(
            SandboxColdStart(
                self._now,
                sandbox.name,
                function_name=self.function.name,
                alloc_vcpus=self.function.alloc_vcpus,
                alloc_memory_gb=self.function.alloc_memory_gb,
                init_duration_s=init_duration,
            )
        )
        if self._feedback is not None:
            # The fleet (subscribed downstream of the publish above) has
            # synchronously decided this sandbox's admission by now; gate
            # readiness on the outcome instead of scheduling it blindly.
            self._resolve_admission(sandbox)
        self._publish_instance_count()
        return sandbox

    def _resolve_admission(self, sandbox: Sandbox) -> None:
        """Schedule, defer, or abort ``sandbox_ready`` from the fleet's decision."""
        state = self._feedback.admission_state(sandbox.name)
        if state is AdmissionState.QUEUED:
            # Initialisation cannot start until the sandbox lands on a host;
            # readiness is scheduled from the admission callback instead, so
            # the measured queue wait shifts `sandbox_ready` one-for-one.
            self._feedback.gate_readiness(sandbox.name, self._on_admission_resolved)
            return
        if state is AdmissionState.REJECTED:
            self._abort_sandbox(sandbox)
            return
        # ADMITTED, or None when no admission-publishing fleet is attached.
        self._kernel.schedule_in(
            sandbox.init_duration_s, self._kind_sandbox_ready, {"sandbox": sandbox.name}
        )

    def _on_admission_resolved(self, event: SimEvent) -> None:
        """Feedback-channel callback: a queued sandbox was admitted or rejected."""
        name = event.sandbox_name  # type: ignore[attr-defined]
        sandbox = self._sandboxes.get(name)
        if sandbox is None or sandbox.state is not SandboxState.INITIALIZING:
            return
        if isinstance(event, SandboxAdmitted):
            self._kernel.schedule_in(
                sandbox.init_duration_s, self._kind_sandbox_ready, {"sandbox": name}
            )
            return
        # Late rejection of a queued sandbox.  The stock fleet only rejects at
        # admission time (before any gate exists), but the channel contract
        # allows a fleet to time queue entries out, so the platform must
        # handle it: tear the sandbox down, fail everything waiting on it.
        waiting = self._pending_cold.pop(name, [])
        self._abort_sandbox(sandbox)
        for arrival_s, request_id, attempts, retry_wait_s, origin_s in waiting:
            self._fail_request(
                request_id, arrival_s, reason="admission_rejected", sandbox_name=name,
                attempts=attempts, retry_wait_s=retry_wait_s, origin_s=origin_s,
            )
        self._publish_instance_count()

    def _discard_sandbox(self, sandbox: Sandbox) -> None:
        """Forget a terminated sandbox.

        Keeping every dead sandbox in the registry made routing scans and
        memory grow with the total number ever created -- quadratic over a
        million-request run.  All event handlers treat an unknown sandbox
        name as terminated, so stale kernel events for a discarded sandbox
        are ignored exactly as they were when its record stuck around.
        """
        self._sandboxes.pop(sandbox.name, None)
        self._completion_version.pop(sandbox.name, None)
        self._keepalive_pending.pop(sandbox.name, None)

    def _abort_sandbox(self, sandbox: Sandbox) -> None:
        """Tear down a sandbox whose fleet admission was rejected."""
        sandbox.terminate(self._now)
        self._discard_sandbox(sandbox)
        self.bus.publish(SandboxEvicted(self._now, sandbox.name, reason="admission_rejected"))

    def _fail_request(
        self,
        request_id: str,
        arrival_s: float,
        reason: str,
        sandbox_name: str = "",
        attempts: int = 1,
        retry_wait_s: float = 0.0,
        origin_s: float = 0.0,
    ) -> None:
        # The retry loop is a downstream bus subscriber, but the gave_up flag
        # must already be on the record metrics capture first -- so the
        # publisher asks the loop's policy.  Bus dispatch is synchronous, so
        # no budget can be spent between this query and the loop's handling
        # of the very event it stamps.  Elapsed time since the logical
        # request's first attempt feeds the policy's retry deadline; the
        # publisher and the loop compute it from the same stamps, so they
        # always agree.
        now = self._now
        origin = origin_s or arrival_s
        gave_up = self._retry is not None and not self._retry.will_retry(
            self.name, attempts, now - origin
        )
        # Fleet-issued backpressure hint for the sandbox that rejected us; the
        # retry loop stretches its backoff to honour it.  Zero when the fleet
        # does not issue hints (the default) or no sandbox was involved.
        retry_after = 0.0
        if self._feedback is not None and sandbox_name:
            retry_after = self._feedback.retry_after_s(sandbox_name)
        self.bus.publish(
            RequestFailed(
                now,
                FailedRequest(
                    request_id=request_id,
                    arrival_s=arrival_s,
                    failed_s=now,
                    reason=reason,
                    sandbox_name=sandbox_name,
                    attempts=attempts,
                    retry_wait_s=retry_wait_s,
                    gave_up=gave_up,
                    tenant=self._tenant,
                    origin_s=origin,
                    retry_after_s=retry_after,
                ),
            )
        )

    def _handle_sandbox_ready(self, event: Event) -> None:
        sandbox = self._sandboxes.get(event.data["sandbox"])
        if sandbox is None or sandbox.state is SandboxState.TERMINATED:
            return
        sandbox.mark_ready(self._now)
        waiting = self._pending_cold.pop(sandbox.name, [])
        for index, (arrival_s, request_id, attempts, retry_wait_s, origin_s) in enumerate(waiting):
            # The request(s) that waited for this sandbox experienced the cold start.
            self._admit(sandbox, request_id, arrival_s, cold=True,
                        attempts=attempts, retry_wait_s=retry_wait_s, origin_s=origin_s)
        self._drain_queue()
        self._maybe_schedule_keepalive(sandbox)

    def _admit(
        self,
        sandbox: Sandbox,
        request_id: str,
        arrival_s: float,
        cold: bool,
        attempts: int = 1,
        retry_wait_s: float = 0.0,
        origin_s: float = 0.0,
    ) -> None:
        now = self._now
        overhead = self.platform.serving.sample_overhead_s(self.function.alloc_vcpus, self._rng)
        request = ActiveRequest(
            request_id=request_id,
            arrival_s=arrival_s,
            admitted_s=now,
            remaining_cpu_s=self.function.cpu_time_s,
            io_remaining_s=self.function.io_time_s + overhead,
            overhead_s=overhead,
            cold_start=cold,
            init_wait_s=(now - arrival_s) if cold else 0.0,
            attempts=attempts,
            retry_wait_s=retry_wait_s,
            tenant=self._tenant,
            origin_s=origin_s,
        )
        was_busy = sandbox.state is SandboxState.BUSY
        sandbox.admit(request, now)
        self._refresh_rate_factor(sandbox)
        if self._emit_spans:
            self.bus.publish(
                RequestExecuting(
                    now,
                    request_id,
                    sandbox_name=sandbox.name,
                    cold_start=cold,
                    rate_factor=sandbox.rate_factor,
                )
            )
        if not was_busy:
            self.bus.publish(SandboxBusy(now, sandbox.name, sandbox.concurrency))
        self._schedule_completion_check(sandbox)

    def _refresh_rate_factor(self, sandbox: Sandbox) -> None:
        """Re-read the feedback channel's combined slowdown at event-schedule time.

        Called *after* the sandbox advanced its requests to ``now`` (so the
        interval just closed used the factor it was scheduled under) and
        *before* the next completion check is scheduled (so the projection and
        the eventual :meth:`Sandbox.advance` agree on the new rate).  Without
        a channel the factor stays at exactly ``1.0`` -- the float-identical
        pre-feedback behaviour.
        """
        if self._feedback is not None:
            sandbox.rate_factor = self._feedback.service_rate(self._now)

    # ------------------------------------------------------------------
    # Completion handling
    # ------------------------------------------------------------------

    def _schedule_completion_check(self, sandbox: Sandbox) -> None:
        name = sandbox.name
        version = self._completion_version[name] + 1
        self._completion_version[name] = version
        now = self._now
        next_time = sandbox.next_completion_time(now)
        if next_time is None:
            return
        self._kernel.schedule(
            max(next_time, now),
            self._kind_completion,
            {"sandbox": sandbox.name, "version": version},
        )

    def _handle_completion(self, event: Event) -> None:
        name = event.data["sandbox"]
        sandbox = self._sandboxes.get(name)
        if sandbox is None or sandbox.state is SandboxState.TERMINATED:
            return
        if event.data["version"] != self._completion_version[name]:
            return  # stale check; membership changed since it was scheduled
        now = self._now
        sandbox.advance(now)
        finished = sandbox.completed_requests()
        for request_id, request in finished.items():
            sandbox.remove(request_id, now)
            exec_start = request.exec_start_s if request.exec_start_s is not None else request.admitted_s
            execution_duration = now - exec_start
            self.bus.publish(
                RequestCompleted(
                    now,
                    RequestOutcome(
                        request_id=request_id,
                        arrival_s=request.arrival_s,
                        start_s=exec_start,
                        completion_s=now,
                        execution_duration_s=execution_duration,
                        cold_start=request.cold_start,
                        init_duration_s=request.init_wait_s,
                        queue_delay_s=max(exec_start - request.arrival_s - request.init_wait_s, 0.0),
                        sandbox_name=sandbox.name,
                        service_floor_s=self.function.service_time_s + request.overhead_s,
                        attempts=request.attempts,
                        retry_wait_s=request.retry_wait_s,
                        tenant=request.tenant,
                        origin_s=request.origin_s,
                    ),
                )
            )
        if finished:
            self._drain_queue()
            self._maybe_schedule_keepalive(sandbox)
        self._refresh_rate_factor(sandbox)
        self._schedule_completion_check(sandbox)

    def _drain_queue(self) -> None:
        """Move queued requests onto sandboxes with free capacity (FIFO)."""
        while self._queue:
            sandbox = self._pick_sandbox()
            if sandbox is None:
                return
            arrival_s, request_id, attempts, retry_wait_s, origin_s = self._queue.popleft()
            self._admit(sandbox, request_id, arrival_s, cold=False,
                        attempts=attempts, retry_wait_s=retry_wait_s, origin_s=origin_s)

    # ------------------------------------------------------------------
    # Keep-alive and termination
    # ------------------------------------------------------------------

    def _maybe_schedule_keepalive(self, sandbox: Sandbox) -> None:
        if sandbox.state is not SandboxState.IDLE:
            return
        now = self._now
        self.bus.publish(SandboxIdle(now, sandbox.name))
        keep_alive = self.platform.keep_alive.sample_keep_alive_s(
            self._rng, scaled_out_instances=self._instance_count()
        )
        deadline = now + keep_alive
        sandbox.keep_alive_deadline_s = deadline
        name = sandbox.name
        # At most one pending expiry check per sandbox.  Scheduling one event
        # per idle transition (the old scheme) left every superseded check on
        # the heap for the full keep-alive window -- hundreds of thousands of
        # stale entries in a long busy run.  A pending *earlier* check
        # re-arms itself at the current deadline when it fires
        # (:meth:`_handle_keepalive_expire`), so only a deadline that moved
        # earlier than the pending check needs a new event.
        pending = self._keepalive_pending.get(name)
        if pending is not None and pending <= deadline:
            return
        self._keepalive_pending[name] = deadline
        self._kernel.schedule(
            deadline, self._kind_keepalive_expire, {"sandbox": name, "deadline": deadline}
        )

    def _handle_keepalive_expire(self, event: Event) -> None:
        name = event.data["sandbox"]
        checked = event.data["deadline"]
        if self._keepalive_pending.get(name) == checked:
            del self._keepalive_pending[name]
        sandbox = self._sandboxes.get(name)
        if sandbox is None or sandbox.state is not SandboxState.IDLE:
            return
        deadline = sandbox.keep_alive_deadline_s
        if abs(deadline - checked) > 1e-6:
            # The sandbox served more requests since this check was armed.
            # If its current deadline lies beyond this check and nothing else
            # is pending, re-arm at that deadline -- the check this handler
            # suppressed at idle time.  (A deadline *before* this check
            # always has its own earlier pending event.)
            if deadline > checked and self._keepalive_pending.get(name, _INF) > deadline:
                self._keepalive_pending[name] = deadline
                self._kernel.schedule(
                    deadline, self._kind_keepalive_expire, {"sandbox": name, "deadline": deadline}
                )
            return
        sandbox.terminate(self._now)
        self._discard_sandbox(sandbox)
        self.bus.publish(KeepAliveExpired(self._now, sandbox.name))
        self.bus.publish(SandboxEvicted(self._now, sandbox.name, reason="keepalive_expire"))
        self._publish_instance_count()

    # ------------------------------------------------------------------
    # Autoscaling (a polled kernel process, registered in __init__)
    # ------------------------------------------------------------------

    def _autoscale_tick(self, now_s: float) -> None:
        if self._autoscaler is None:
            return
        alive = self._alive_sandboxes()
        active_requests: float = sum(s.concurrency for s in alive) + len(self._queue)
        queue_weight = self._autoscaler.config.admission_queue_weight
        if self._feedback is not None and queue_weight > 0:
            # Queue-aware autoscaling: cold starts stuck in the fleet's
            # admission queue are demand the concurrency/CPU metrics cannot
            # see (their requests are parked in _pending_cold, not executing).
            # Weigh the simulator's own share of the admission queue into the
            # scale-up signal so the autoscaler reacts to backpressure.
            active_requests += queue_weight * self._feedback.admission_queue_depth(
                self._id_prefix
            )
        busy_vcpus = sum(
            min(float(s.concurrency), s.alloc_vcpus) for s in alive if s.state is SandboxState.BUSY
        )
        self._autoscaler.observe(self._now, active_requests, busy_vcpus, len(alive))
        desired = self._autoscaler.desired_instances(self._now, len(alive))
        current = len(alive)
        if desired > current:
            for _ in range(desired - current):
                self._create_sandbox()
        elif desired < current:
            removable = [s for s in alive if s.state is SandboxState.IDLE]
            for sandbox in removable[: current - desired]:
                sandbox.terminate(self._now)
                self._discard_sandbox(sandbox)
                self.bus.publish(SandboxEvicted(self._now, sandbox.name, reason="scale_down"))
        self._publish_instance_count()
        self._drain_queue()
