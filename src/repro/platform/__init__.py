"""Discrete-event serverless platform simulator (paper §3).

Models the parts of a public serverless platform that the paper identifies as
hidden cost drivers:

- the **concurrency model** (single- versus multi-concurrency sandboxes) and
  the resource contention it creates (§3.1),
- the **request serving architecture** (API long polling, HTTP server, or
  code/binary execution) and its per-request overhead (§3.2),
- **keep-alive** duration and resource allocation behaviour (§3.3), and the
  cold-start probability as a function of idle time,
- a concurrency/CPU-target **autoscaler** with a metric aggregation window,
  which is responsible for the scaling lag the paper measures on GCP.

Per-platform presets (:mod:`repro.platform.presets`) configure these pieces to
match the behaviour the paper observed on AWS Lambda, Google Cloud Run, Azure
Functions and Cloudflare Workers.
"""

from repro.platform.config import FunctionConfig, PlatformConfig
from repro.platform.serving import ServingArchitecture, ServingOverheadModel
from repro.platform.keepalive import KeepAlivePolicy, KeepAliveResourceBehavior
from repro.platform.concurrency import ConcurrencyModel, ContentionModel
from repro.platform.autoscaler import Autoscaler, AutoscalerConfig
from repro.platform.sandbox import Sandbox, SandboxState
from repro.platform.invoker import PlatformSimulator, RequestOutcome, SimulationMetrics
from repro.platform.presets import PLATFORM_PRESETS, get_platform_preset

__all__ = [
    "FunctionConfig",
    "PlatformConfig",
    "ServingArchitecture",
    "ServingOverheadModel",
    "KeepAlivePolicy",
    "KeepAliveResourceBehavior",
    "ConcurrencyModel",
    "ContentionModel",
    "Autoscaler",
    "AutoscalerConfig",
    "Sandbox",
    "SandboxState",
    "PlatformSimulator",
    "RequestOutcome",
    "SimulationMetrics",
    "PLATFORM_PRESETS",
    "get_platform_preset",
]
