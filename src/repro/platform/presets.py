"""Per-platform serving presets matching the behaviour the paper measured (§3).

Each preset wires together a concurrency model, a serving-architecture
overhead model, a keep-alive policy (Figure 9 / Table 2) and -- for
multi-concurrency platforms -- an autoscaler configuration.
"""

from __future__ import annotations

from typing import Dict

from repro.platform.autoscaler import AutoscalerConfig
from repro.platform.concurrency import ConcurrencyModel, ContentionModel
from repro.platform.config import PlatformConfig
from repro.platform.keepalive import KeepAlivePolicy, KeepAliveResourceBehavior
from repro.platform.serving import ServingOverheadModel

__all__ = ["PLATFORM_PRESETS", "get_platform_preset"]


def _aws_lambda_like() -> PlatformConfig:
    """AWS-Lambda-like: single concurrency, API long polling, freeze-based keep-alive."""
    return PlatformConfig(
        name="aws_lambda_like",
        concurrency=ConcurrencyModel.single(),
        serving=ServingOverheadModel.api_polling(),
        keep_alive=KeepAlivePolicy(
            min_keep_alive_s=300.0,
            max_keep_alive_s=360.0,
            resource_behavior=KeepAliveResourceBehavior.FREEZE_DEALLOCATE,
            graceful_shutdown=True,  # via Lambda extensions (SIGTERM handling)
        ),
        autoscaler=None,
        contention=ContentionModel(),
        placement_delay_s=0.05,
    )


def _gcp_run_like() -> PlatformConfig:
    """GCP-Cloud-Run-like: multi-concurrency (limit 80), HTTP server, CPU scale-down keep-alive."""
    return PlatformConfig(
        name="gcp_run_like",
        # Admission limit is the GCP default of 80; the Python functions
        # runtime executes ~8 requests in parallel (gunicorn worker/thread pool).
        concurrency=ConcurrencyModel.multi(max_concurrency=80, runtime_workers=8),
        serving=ServingOverheadModel.http_server(base_overhead_s=4.5e-3),
        keep_alive=KeepAlivePolicy(
            min_keep_alive_s=600.0,
            max_keep_alive_s=900.0,
            resource_behavior=KeepAliveResourceBehavior.SCALE_DOWN_CPU,
            keep_alive_cpu_vcpus=0.01,
        ),
        autoscaler=AutoscalerConfig(
            target_cpu_utilization=0.6,
            target_concurrency_fraction=0.7,
            metric_window_s=60.0,
            evaluation_interval_s=2.0,
            min_instances=0,
            scale_down_delay_s=60.0,
        ),
        contention=ContentionModel(overhead_per_peer=0.03),
        placement_delay_s=0.1,
    )


def _azure_consumption_like() -> PlatformConfig:
    """Azure-Consumption-like: HTTP server, full allocation during an opportunistic keep-alive."""
    return PlatformConfig(
        name="azure_consumption_like",
        concurrency=ConcurrencyModel.multi(max_concurrency=16, runtime_workers=4),
        serving=ServingOverheadModel.http_server(base_overhead_s=5.93e-3),
        keep_alive=KeepAlivePolicy(
            min_keep_alive_s=120.0,
            max_keep_alive_s=360.0,
            resource_behavior=KeepAliveResourceBehavior.FULL_ALLOCATION,
            keep_alive_memory_fraction=1.0,
            scale_out_extension_s=380.0,  # ~740 s observed for a 3-instance function
        ),
        autoscaler=AutoscalerConfig(
            target_cpu_utilization=0.7,
            target_concurrency_fraction=0.5,
            metric_window_s=30.0,
            evaluation_interval_s=5.0,
            min_instances=0,
            scale_down_delay_s=120.0,
        ),
        contention=ContentionModel(overhead_per_peer=0.04),
        placement_delay_s=0.2,
    )


def _ibm_code_engine_like() -> PlatformConfig:
    """IBM-Code-Engine-like: Knative-based, multi-concurrency default 100, HTTP server."""
    return PlatformConfig(
        name="ibm_code_engine_like",
        concurrency=ConcurrencyModel.multi(max_concurrency=100, runtime_workers=8),
        serving=ServingOverheadModel.http_server(base_overhead_s=3.5e-3),
        keep_alive=KeepAlivePolicy(
            min_keep_alive_s=300.0,
            max_keep_alive_s=600.0,
            resource_behavior=KeepAliveResourceBehavior.SCALE_DOWN_CPU,
            keep_alive_cpu_vcpus=0.01,
        ),
        autoscaler=AutoscalerConfig(
            target_cpu_utilization=0.7,
            target_concurrency_fraction=0.7,
            metric_window_s=60.0,
            evaluation_interval_s=2.0,
            min_instances=0,
            scale_down_delay_s=60.0,
        ),
        contention=ContentionModel(overhead_per_peer=0.03),
        placement_delay_s=0.1,
    )


def _cloudflare_workers_like() -> PlatformConfig:
    """Cloudflare-Workers-like: isolate-per-request code execution, near-zero overhead."""
    return PlatformConfig(
        name="cloudflare_workers_like",
        concurrency=ConcurrencyModel.single(),
        serving=ServingOverheadModel.code_execution(),
        keep_alive=KeepAlivePolicy(
            min_keep_alive_s=30.0,
            max_keep_alive_s=60.0,
            resource_behavior=KeepAliveResourceBehavior.CODE_CACHE,
        ),
        autoscaler=None,
        contention=ContentionModel(),
        placement_delay_s=0.005,
    )


PLATFORM_PRESETS: Dict[str, PlatformConfig] = {
    "aws_lambda_like": _aws_lambda_like(),
    "gcp_run_like": _gcp_run_like(),
    "azure_consumption_like": _azure_consumption_like(),
    "ibm_code_engine_like": _ibm_code_engine_like(),
    "cloudflare_workers_like": _cloudflare_workers_like(),
}


def get_platform_preset(name: str) -> PlatformConfig:
    """Look up a platform preset by name; raises ``KeyError`` with the valid names."""
    try:
        return PLATFORM_PRESETS[name]
    except KeyError:
        raise KeyError(f"unknown platform preset {name!r}; valid: {sorted(PLATFORM_PRESETS)}") from None
