"""Sandbox lifecycle: initialisation, execution, keep-alive, shutdown.

A sandbox is the unit the platform allocates resources to (a container, pod or
microVM).  Its lifecycle matches the paper's description of the serverless
runtime sandbox: initialisation (cold start), request execution, keep-alive,
and shutdown.  Under the multi-concurrency model several requests may be
admitted into one sandbox at the same time; of those, up to ``runtime_workers``
execute in parallel (sharing the sandbox's vCPUs under processor sharing, see
:mod:`repro.platform.concurrency`) while the rest wait in the sandbox's local
queue.  The wait is visible in end-to-end latency but not in the
provider-reported execution duration, matching how platforms report the metric
the paper plots.
"""

from __future__ import annotations

import enum
import itertools
import sys
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.platform.concurrency import ContentionModel

__all__ = ["SandboxState", "ActiveRequest", "Sandbox"]

#: One ActiveRequest is allocated per admitted request and one Sandbox per
#: cold start; ``slots=True`` (Python 3.10+) keeps these hot objects small
#: and their attribute access fast.  Older interpreters fall back to
#: dict-backed dataclasses with identical behaviour.
_SLOTS = {"slots": True} if sys.version_info >= (3, 10) else {}

_sandbox_counter = itertools.count()
_EPS = 1e-12


class SandboxState(str, enum.Enum):
    """Lifecycle states of a sandbox."""

    INITIALIZING = "initializing"
    BUSY = "busy"
    IDLE = "idle"  # keep-alive phase
    TERMINATED = "terminated"


@dataclass(**_SLOTS)
class ActiveRequest:
    """A request admitted into a sandbox (executing or waiting for a runtime worker)."""

    request_id: str
    arrival_s: float
    admitted_s: float
    remaining_cpu_s: float
    io_remaining_s: float
    overhead_s: float
    cold_start: bool
    init_wait_s: float = 0.0
    exec_start_s: Optional[float] = None
    #: Client attempt number (1 = original; >1 = retry-loop re-injection).
    attempts: int = 1
    #: Cumulative client backoff spent before this attempt arrived.
    retry_wait_s: float = 0.0
    #: Tenant that issued the request (empty without the tenancy layer).
    tenant: str = ""
    #: Arrival time of the first attempt of this logical request (``0.0``
    #: means unknown: pre-tenancy construction paths).
    origin_s: float = 0.0


@dataclass(**_SLOTS)
class Sandbox:
    """One sandbox instance of a function."""

    function_name: str
    alloc_vcpus: float
    alloc_memory_gb: float
    contention: ContentionModel
    created_s: float
    init_duration_s: float
    runtime_workers: int = 1_000_000
    name: str = field(default="")

    state: SandboxState = field(default=SandboxState.INITIALIZING, init=False)
    #: Execution-rate factor in (0, 1] applied on top of the contention model.
    #: The platform simulator re-reads it from the feedback channel at every
    #: admit/completion event; between events it is piecewise-constant, so
    #: scheduled completion projections stay consistent with :meth:`advance`.
    #: ``1.0`` (the default, and the only value with feedback off) leaves
    #: progress float-exactly unchanged.
    rate_factor: float = field(default=1.0, init=False)
    ready_s: float = field(default=0.0, init=False)
    last_busy_s: float = field(default=0.0, init=False)
    keep_alive_deadline_s: float = field(default=float("inf"), init=False)
    #: Requests currently executing (at most ``runtime_workers``).
    executing: Dict[str, ActiveRequest] = field(default_factory=dict, init=False)
    #: Admitted requests waiting for a runtime worker, in FIFO order.
    waiting: List[ActiveRequest] = field(default_factory=list, init=False)
    _last_progress_update_s: float = field(default=0.0, init=False)
    served_requests: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if not self.name:
            self.name = f"sandbox-{next(_sandbox_counter)}"
        if self.runtime_workers < 1:
            raise ValueError("runtime_workers must be >= 1")
        self.ready_s = self.created_s + self.init_duration_s
        self._last_progress_update_s = self.ready_s
        self.last_busy_s = self.ready_s

    # ------------------------------------------------------------------
    # State transitions
    # ------------------------------------------------------------------

    @property
    def concurrency(self) -> int:
        """Total admitted requests (executing plus waiting) -- the platform's view."""
        return len(self.executing) + len(self.waiting)

    @property
    def is_available(self) -> bool:
        return self.state in (SandboxState.BUSY, SandboxState.IDLE)

    def mark_ready(self, now_s: float) -> None:
        """Initialisation finished; the sandbox can accept requests."""
        if self.state is not SandboxState.INITIALIZING:
            raise RuntimeError(f"sandbox {self.name} is not initialising")
        self.state = SandboxState.IDLE
        self.ready_s = now_s
        self._last_progress_update_s = now_s
        self.last_busy_s = now_s

    def terminate(self, now_s: float) -> None:
        if self.executing or self.waiting:
            raise RuntimeError(f"cannot terminate sandbox {self.name} with active requests")
        self.state = SandboxState.TERMINATED
        self.last_busy_s = now_s

    # ------------------------------------------------------------------
    # Processor-sharing execution
    # ------------------------------------------------------------------

    def advance(self, now_s: float) -> None:
        """Advance executing requests' progress to ``now_s`` under processor sharing."""
        if now_s < self._last_progress_update_s - 1e-9:
            raise ValueError("time went backwards in sandbox advance")
        elapsed = max(now_s - self._last_progress_update_s, 0.0)
        self._last_progress_update_s = now_s
        if elapsed <= 0 or not self.executing:
            return
        n = len(self.executing)
        rate = self.contention.per_request_rate(n, self.alloc_vcpus) * self.rate_factor
        for request in self.executing.values():
            if request.remaining_cpu_s > 0:
                consumed = min(request.remaining_cpu_s, elapsed * rate)
                request.remaining_cpu_s -= consumed
                # IO only starts after the CPU phase finishes; leftover elapsed
                # time beyond the CPU completion counts toward IO.
                leftover = elapsed - (consumed / rate if rate > 0 else 0.0)
                if request.remaining_cpu_s <= _EPS and leftover > 0:
                    request.io_remaining_s = max(request.io_remaining_s - leftover, 0.0)
            else:
                request.io_remaining_s = max(request.io_remaining_s - elapsed, 0.0)

    def admit(self, request: ActiveRequest, now_s: float) -> None:
        """Admit a request: it starts executing if a runtime worker is free, else waits."""
        self.advance(now_s)
        if len(self.executing) < self.runtime_workers:
            request.exec_start_s = now_s
            self.executing[request.request_id] = request
        else:
            self.waiting.append(request)
        self.state = SandboxState.BUSY
        self.keep_alive_deadline_s = float("inf")

    def completed_requests(self) -> Dict[str, ActiveRequest]:
        """Executing requests whose CPU and IO phases have both finished."""
        return {
            rid: req
            for rid, req in self.executing.items()
            if req.remaining_cpu_s <= _EPS and req.io_remaining_s <= _EPS
        }

    def remove(self, request_id: str, now_s: float) -> ActiveRequest:
        """Remove a finished request and promote the oldest waiting request, if any."""
        request = self.executing.pop(request_id)
        self.served_requests += 1
        if self.waiting and len(self.executing) < self.runtime_workers:
            promoted = self.waiting.pop(0)
            promoted.exec_start_s = now_s
            self.executing[promoted.request_id] = promoted
        if not self.executing and not self.waiting:
            self.state = SandboxState.IDLE
            self.last_busy_s = now_s
        return request

    def next_completion_time(self, now_s: float) -> Optional[float]:
        """Earliest time at which some executing request could finish, given current sharing."""
        if not self.executing:
            return None
        n = len(self.executing)
        rate = self.contention.per_request_rate(n, self.alloc_vcpus) * self.rate_factor
        best: Optional[float] = None
        for request in self.executing.values():
            if request.remaining_cpu_s > _EPS:
                if rate <= 0:
                    continue
                t = now_s + request.remaining_cpu_s / rate + request.io_remaining_s
            else:
                t = now_s + request.io_remaining_s
            if best is None or t < best:
                best = t
        return best

    def idle_time(self, now_s: float) -> float:
        """How long the sandbox has been idle (0 when busy or initialising)."""
        if self.state is not SandboxState.IDLE:
            return 0.0
        return max(now_s - self.last_busy_s, 0.0)
