"""Request serving architectures and their per-request overhead (paper §3.2, Figures 7-8).

The paper distinguishes three mainstream serving architectures:

- **API long polling** (AWS Lambda): a runtime program inside the sandbox
  polls the runtime API in a blocking loop; measured overhead ~1.17 ms on
  average, stable across resource configurations.
- **HTTP server** (GCP, Azure, IBM, Knative): the function hosts an HTTP
  server behind a queue/ingress; measured overhead up to ~5.93 ms on average,
  and higher at small CPU allocations because header parsing, encoding and
  routing are CPU-bound.
- **Code/binary execution** (Cloudflare Workers): the engine executes the
  artifact directly; overhead below the provider's 0.01 ms reporting
  precision.

The overhead model produces a per-request latency adder with a configurable
mean, tail, and CPU-allocation sensitivity.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

__all__ = ["ServingArchitecture", "ServingOverheadModel"]


class ServingArchitecture(str, enum.Enum):
    """The three mainstream serverless request serving architectures (Figure 7)."""

    API_POLLING = "api_polling"
    HTTP_SERVER = "http_server"
    CODE_EXECUTION = "code_execution"


@dataclass(frozen=True)
class ServingOverheadModel:
    """Per-request latency added by the serving layer.

    Attributes:
        architecture: which serving architecture the platform uses.
        base_overhead_s: mean overhead at a 1 vCPU allocation.
        jitter_fraction: lognormal-ish spread around the mean (p95 is roughly
            ``mean * (1 + 3 * jitter_fraction)``).
        cpu_sensitivity: how strongly the overhead grows as the allocation
            shrinks below 1 vCPU.  ``overhead = base * (1 + sensitivity *
            (1/vcpus - 1))`` for ``vcpus < 1``; architectures whose overhead is
            dominated by CPU-bound parsing (HTTP server) have a high value.
    """

    architecture: ServingArchitecture
    base_overhead_s: float
    jitter_fraction: float = 0.25
    cpu_sensitivity: float = 0.0

    def __post_init__(self) -> None:
        if self.base_overhead_s < 0:
            raise ValueError("base_overhead_s must be >= 0")
        if self.jitter_fraction < 0:
            raise ValueError("jitter_fraction must be >= 0")
        if self.cpu_sensitivity < 0:
            raise ValueError("cpu_sensitivity must be >= 0")

    # Default parameters measured in the paper (Figure 8).
    @classmethod
    def api_polling(cls) -> "ServingOverheadModel":
        """AWS-Lambda-like runtime API long polling: ~1.17 ms mean, CPU-insensitive."""
        return cls(ServingArchitecture.API_POLLING, base_overhead_s=1.17e-3, jitter_fraction=0.20,
                   cpu_sensitivity=0.05)

    @classmethod
    def http_server(cls, base_overhead_s: float = 4.0e-3) -> "ServingOverheadModel":
        """HTTP-server-based serving (GCP/Azure/Knative): several ms, CPU-sensitive."""
        return cls(ServingArchitecture.HTTP_SERVER, base_overhead_s=base_overhead_s,
                   jitter_fraction=0.35, cpu_sensitivity=0.12)

    @classmethod
    def code_execution(cls) -> "ServingOverheadModel":
        """Cloudflare-Workers-like direct code execution: near-zero overhead."""
        return cls(ServingArchitecture.CODE_EXECUTION, base_overhead_s=5.0e-6, jitter_fraction=0.50,
                   cpu_sensitivity=0.0)

    def mean_overhead_s(self, alloc_vcpus: float) -> float:
        """Mean serving overhead at the given CPU allocation."""
        if alloc_vcpus <= 0:
            raise ValueError("alloc_vcpus must be positive")
        scale = 1.0
        if alloc_vcpus < 1.0:
            scale += self.cpu_sensitivity * (1.0 / alloc_vcpus - 1.0)
        return self.base_overhead_s * scale

    def sample_overhead_s(self, alloc_vcpus: float, rng: np.random.Generator) -> float:
        """Draw one per-request overhead sample (lognormal around the mean)."""
        mean = self.mean_overhead_s(alloc_vcpus)
        if mean <= 0:
            return 0.0
        sigma = self.jitter_fraction
        # Lognormal with the requested mean: mu = ln(mean) - sigma^2 / 2.
        return float(rng.lognormal(np.log(mean) - 0.5 * sigma**2, sigma))
