"""Metrics collected by the platform simulator.

:class:`SimulationMetrics` is hot-path state: one :class:`RequestOutcome` is
recorded per completed request, and million-request runs make the old
list-walking aggregations (re-deriving sums and percentile inputs from the
outcome objects on every call) the dominant cost of ``summary()``.  The
collector therefore keeps *incremental* aggregates next to the raw records:

- execution durations and end-to-end latencies land in preallocated,
  doubling ``float64`` buffers at record time (``summary()`` and the
  percentile helpers read slices, never rebuild lists);
- scalar sums (latency, service floor, terminal attempts) accumulate as the
  requests complete, in arrival order -- the same left-to-right order the
  old ``sum(...)`` calls used, so every derived statistic is bit-identical.

``retain_outcomes=False`` additionally drops the per-request
:class:`RequestOutcome` objects (the aggregates above are kept), bounding
memory for million-request benchmark runs.  Record-level views
(``duration_timeline``, ``attempt_counts``) raise in that mode instead of
silently returning empty results.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

__all__ = ["FailedRequest", "RequestOutcome", "SimulationMetrics"]

#: ``slots=True`` shrinks the per-request records (one ``RequestOutcome`` per
#: completed request is hot-path allocation), but the dataclass flag only
#: exists on Python 3.10+; older interpreters fall back to dict-backed
#: dataclasses with identical behaviour.
_SLOTS: Dict[str, bool] = {"slots": True} if sys.version_info >= (3, 10) else {}

#: Initial capacity of the duration/latency buffers; doubled on overflow.
_INITIAL_CAPACITY = 1024


@dataclass(frozen=True, **_SLOTS)
class RequestOutcome:
    """The outcome of one simulated invocation, as the provider would report it."""

    request_id: str
    arrival_s: float
    start_s: float
    completion_s: float
    execution_duration_s: float
    cold_start: bool
    init_duration_s: float
    queue_delay_s: float
    sandbox_name: str
    #: Uncontended, unthrottled floor of this request's execution duration
    #: (serving overhead + CPU at full allocation + IO).  Everything above it
    #: -- contention, scheduler throttling via the feedback layer, sandbox
    #: queueing -- is latency inflation.  ``0`` on records that predate the
    #: feedback layer (old pickles / hand-built outcomes).
    service_floor_s: float = 0.0
    #: Which client attempt this was (1 = the original request; >1 means the
    #: retry loop re-injected it after earlier attempts failed).
    attempts: int = 1
    #: Cumulative client-side backoff the request waited across all earlier
    #: failed attempts before this (successful) one arrived.
    retry_wait_s: float = 0.0
    #: Tenant that issued the request (empty without the tenancy layer).
    tenant: str = ""
    #: Arrival time of the *first* attempt of this logical request (equals
    #: ``arrival_s`` for attempt-1 traffic; earlier for retries).  ``0.0`` on
    #: records that predate the tenancy layer.
    origin_s: float = 0.0

    @property
    def end_to_end_latency_s(self) -> float:
        return self.completion_s - self.arrival_s

    @property
    def client_latency_s(self) -> float:
        """Latency the client perceived: completion minus first-attempt arrival.

        Includes every failed attempt's wait and all client-side backoff --
        the latency SLO attainment is judged against.  Falls back to the
        per-attempt latency on records without an origin timestamp.
        """
        return self.completion_s - (self.origin_s or self.arrival_s)

    @property
    def turnaround_s(self) -> float:
        """Billable turnaround: init (when cold) plus execution."""
        return self.init_duration_s + self.execution_duration_s


@dataclass(frozen=True, **_SLOTS)
class FailedRequest:
    """A request the platform gave up on (it never started executing).

    Produced when the execution-feedback layer reports that the fleet
    *rejected* the cold-started sandbox the request was waiting on -- the
    admission outcome the paper's backpressure arguments say must surface in
    user-visible failure rates rather than disappear at the placement layer.
    """

    request_id: str
    arrival_s: float
    failed_s: float
    reason: str
    sandbox_name: str = ""
    #: Which client attempt failed (1 = the original request).
    attempts: int = 1
    #: Cumulative client-side backoff spent before this attempt arrived.
    retry_wait_s: float = 0.0
    #: Terminal flag set by the retry layer: ``True`` means the client will
    #: not retry this failure (attempts exhausted or retry budget spent).
    #: Always ``False`` without a retry loop -- the pre-retry behaviour,
    #: where every failure was implicitly terminal.
    gave_up: bool = False
    #: Tenant that issued the request (empty without the tenancy layer).
    tenant: str = ""
    #: Arrival time of the first attempt of this logical request (``0.0`` on
    #: pre-tenancy records); the retry loop's deadline check measures elapsed
    #: time from here.
    origin_s: float = 0.0
    #: The fleet's load-shedding hint attached to this failure: how long the
    #: client should wait before retrying (0.0 when no hint was issued).  The
    #: retry loop stretches its backoff to at least this value.
    retry_after_s: float = 0.0

    @property
    def waiting_s(self) -> float:
        """How long the request waited before the platform failed it."""
        return self.failed_s - self.arrival_s


@dataclass
class SimulationMetrics:
    """Aggregated output of one platform simulation."""

    requests: List[RequestOutcome] = field(default_factory=list)
    #: Requests the platform failed (rejected sandbox admission), in order.
    failures: List[FailedRequest] = field(default_factory=list)
    #: Requests still waiting when the run ended: parked at the ingress queue
    #: or behind a sandbox whose admission never resolved (backpressure that
    #: outlived the horizon).  Neither completed nor failed -- censored --
    #: but they must not vanish from a saturated run's accounting.
    pending_requests: int = 0
    #: (time, instance count) samples over the simulation.
    instance_timeline: List[Tuple[float, int]] = field(default_factory=list)
    cold_starts: int = 0
    #: Arrival events that actually fired, retries included.  The conservation
    #: law every run must satisfy: ``arrivals == completed + failed + pending
    #: + in-flight`` (the last term is zero once a run has drained).
    arrivals: int = 0
    #: Of those, how many were retry re-injections (attempt > 1).
    retry_arrivals: int = 0
    #: Arrivals the tenancy layer's admission controller denied for credits.
    #: Denials are terminal and never reach routing, so they form their own
    #: bucket in the conservation law: ``arrivals == completed + failed +
    #: denied + pending + in-flight``.  Always 0 without the tenancy layer.
    denied_requests: int = 0
    #: Latency SLO target for this simulator's tenant (``None`` = no SLO).
    #: When set, :meth:`record` counts completions whose *client-perceived*
    #: latency (completion minus first-attempt arrival) meets the target.
    slo_latency_s: Optional[float] = None
    #: Completions that met ``slo_latency_s`` (0 when no target is set).
    slo_attained: int = 0
    #: ``False`` drops the per-request :class:`RequestOutcome` objects at
    #: record time while keeping every incremental aggregate -- bounded
    #: memory for million-request runs.  Record-level views
    #: (:meth:`duration_timeline`, :meth:`attempt_counts`) then raise.
    retain_outcomes: bool = True

    def __post_init__(self) -> None:
        # Incremental aggregates, maintained by record() in arrival order so
        # every derived statistic matches the old list-walking computations
        # bit for bit.  Buffers are float64 and doubled on overflow; the
        # first `_completed` entries are live.
        self._completed: int = 0
        self._durations: np.ndarray = np.empty(_INITIAL_CAPACITY, dtype=np.float64)
        self._latencies: np.ndarray = np.empty(_INITIAL_CAPACITY, dtype=np.float64)
        self._latency_sum: float = 0.0
        self._floor_sum: float = 0.0
        self._completed_attempts_sum: int = 0

    def record(self, outcome: RequestOutcome) -> None:
        if self.retain_outcomes:
            self.requests.append(outcome)
        index = self._completed
        durations = self._durations
        if index == durations.shape[0]:
            self._durations = np.empty(durations.shape[0] * 2, dtype=np.float64)
            self._durations[:index] = durations
            latencies = self._latencies
            self._latencies = np.empty(latencies.shape[0] * 2, dtype=np.float64)
            self._latencies[:index] = latencies
        latency = outcome.completion_s - outcome.arrival_s
        self._durations[index] = outcome.execution_duration_s
        self._latencies[index] = latency
        self._completed = index + 1
        self._latency_sum += latency
        self._floor_sum += outcome.service_floor_s
        self._completed_attempts_sum += outcome.attempts
        if outcome.cold_start:
            self.cold_starts += 1
        if self.slo_latency_s is not None:
            client_latency = outcome.completion_s - (outcome.origin_s or outcome.arrival_s)
            if client_latency <= self.slo_latency_s:
                self.slo_attained += 1

    def record_failure(self, failure: FailedRequest) -> None:
        self.failures.append(failure)

    def record_denied(self) -> None:
        """Count a credit-denied arrival (terminal; never routed or retried)."""
        self.denied_requests += 1

    def record_arrival(self, attempts: int = 1) -> None:
        self.arrivals += 1
        if attempts > 1:
            self.retry_arrivals += 1

    def record_instances(self, now_s: float, count: int) -> None:
        self.instance_timeline.append((now_s, count))

    def _require_outcomes(self, what: str) -> None:
        if not self.retain_outcomes and self._completed:
            raise RuntimeError(
                f"{what} needs per-request outcome records, but this collector "
                "was created with retain_outcomes=False"
            )

    # ------------------------------------------------------------------
    # Aggregations used by the analysis / benchmark modules
    # ------------------------------------------------------------------

    @property
    def num_requests(self) -> int:
        return self._completed

    @property
    def failed_requests(self) -> int:
        return len(self.failures)

    @property
    def gave_up_requests(self) -> int:
        """Terminal failures: the client exhausted its attempts or budget."""
        return sum(1 for f in self.failures if f.gave_up)

    @property
    def latency_sum_s(self) -> float:
        """Sum of end-to-end latencies, accumulated in completion order."""
        return self._latency_sum

    @property
    def service_floor_sum_s(self) -> float:
        """Sum of per-request service floors, accumulated in completion order."""
        return self._floor_sum

    def attempt_counts(self) -> List[int]:
        """Attempts of every *terminal* request: completed or given up.

        Non-terminal failures are excluded -- their retry is still in flight
        (or was censored by the horizon), so counting them would double-count
        the logical request.
        """
        self._require_outcomes("attempt_counts()")
        counts = [r.attempts for r in self.requests]
        counts.extend(f.attempts for f in self.failures if f.gave_up)
        return counts

    def terminal_attempt_stats(self) -> Tuple[int, int]:
        """``(sum of attempts, count)`` over terminal requests.

        The integer-exact aggregate behind ``mean_attempts``-style columns,
        available even with ``retain_outcomes=False``: the completed half is
        accumulated at record time, the gave-up half read off the (always
        retained) failure records.
        """
        total = self._completed_attempts_sum
        count = self._completed
        for failure in self.failures:
            if failure.gave_up:
                total += failure.attempts
                count += 1
        return total, count

    def execution_durations_s(self) -> List[float]:
        return self._durations[: self._completed].tolist()

    def end_to_end_latencies_s(self) -> List[float]:
        return self._latencies[: self._completed].tolist()

    def mean_end_to_end_latency_s(self) -> float:
        if not self._completed:
            return float("nan")
        return float(np.mean(self._latencies[: self._completed]))

    def latency_inflation(self) -> float:
        """Aggregate latency above the uncontended service floor, as a ratio.

        ``(sum of end-to-end latencies - sum of service floors) / sum of
        floors``: ``0`` means every request completed at its floor, ``1``
        means latency doubled.  Cold-start waits, sandbox queueing, contention
        and feedback-layer throttling all inflate it.  ``NaN`` with no
        completed requests; ``0`` when floors were not recorded (pre-feedback
        outcome records).
        """
        if not self._completed:
            return float("nan")
        if self._floor_sum <= 0:
            return 0.0
        return (self._latency_sum - self._floor_sum) / self._floor_sum

    def mean_execution_duration_s(self) -> float:
        if not self._completed:
            return float("nan")
        return float(np.mean(self._durations[: self._completed]))

    def percentile_execution_duration_s(self, q: float) -> float:
        """Execution-duration percentile, defined for every input.

        Telemetry histograms and sweep summaries hit the edge cases
        constantly -- an empty run, a single completed request, a caller
        passing ``95`` instead of ``0.95`` -- so this delegates to
        :func:`repro.obs.metrics.percentile`, which never raises: empty
        series return ``nan``, a single sample is every percentile of
        itself, and percent-style ``q`` is normalised.
        """
        from repro.obs.metrics import percentile

        return percentile(self.execution_durations_s(), q)

    def percentile_end_to_end_latency_s(self, q: float) -> float:
        """End-to-end latency percentile, with the same total-domain contract."""
        from repro.obs.metrics import percentile

        return percentile(self.end_to_end_latencies_s(), q)

    def cold_start_rate(self) -> float:
        if not self._completed:
            return float("nan")
        return self.cold_starts / self._completed

    def slo_attainment(self) -> float:
        """Fraction of completions that met the latency SLO target.

        ``nan`` when no target is configured or nothing completed.
        """
        if self.slo_latency_s is None or not self._completed:
            return float("nan")
        return self.slo_attained / self._completed

    def max_instances(self) -> int:
        if not self.instance_timeline:
            return 0
        return max(count for _, count in self.instance_timeline)

    def duration_timeline(self, bucket_s: float = 10.0) -> List[Dict[str, float]]:
        """Mean / median / p95 execution duration per time bucket (Figure 6 right)."""
        if bucket_s <= 0:
            raise ValueError("bucket_s must be positive")
        self._require_outcomes("duration_timeline()")
        buckets: Dict[int, List[float]] = {}
        for request in self.requests:
            bucket = int(request.arrival_s // bucket_s)
            buckets.setdefault(bucket, []).append(request.execution_duration_s)
        instance_by_bucket: Dict[int, List[int]] = {}
        for ts, count in self.instance_timeline:
            instance_by_bucket.setdefault(int(ts // bucket_s), []).append(count)
        rows: List[Dict[str, float]] = []
        for bucket in sorted(buckets):
            durations = np.asarray(buckets[bucket])
            instances = instance_by_bucket.get(bucket, [])
            rows.append(
                {
                    "time_s": bucket * bucket_s,
                    "mean_duration_s": float(np.mean(durations)),
                    "median_duration_s": float(np.median(durations)),
                    "p95_duration_s": float(np.quantile(durations, 0.95)),
                    "requests": float(durations.size),
                    "instances": float(np.mean(instances)) if instances else float("nan"),
                }
            )
        return rows

    def summary(self) -> Dict[str, float]:
        count = self._completed
        if not count:
            return {
                "num_requests": 0.0,
                "failed_requests": float(self.failed_requests),
                "pending_requests": float(self.pending_requests),
            }
        durations = self._durations[:count]
        return {
            "num_requests": float(count),
            "mean_execution_duration_s": float(np.mean(durations)),
            "median_execution_duration_s": float(np.median(durations)),
            "p95_execution_duration_s": float(np.quantile(durations, 0.95)),
            "cold_start_rate": self.cold_start_rate(),
            "max_instances": float(self.max_instances()),
            "failed_requests": float(self.failed_requests),
            "pending_requests": float(self.pending_requests),
            "mean_latency_s": self.mean_end_to_end_latency_s(),
            "latency_inflation": self.latency_inflation(),
        }
