"""Metrics collected by the platform simulator."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

__all__ = ["RequestOutcome", "SimulationMetrics"]


@dataclass(frozen=True)
class RequestOutcome:
    """The outcome of one simulated invocation, as the provider would report it."""

    request_id: str
    arrival_s: float
    start_s: float
    completion_s: float
    execution_duration_s: float
    cold_start: bool
    init_duration_s: float
    queue_delay_s: float
    sandbox_name: str

    @property
    def end_to_end_latency_s(self) -> float:
        return self.completion_s - self.arrival_s

    @property
    def turnaround_s(self) -> float:
        """Billable turnaround: init (when cold) plus execution."""
        return self.init_duration_s + self.execution_duration_s


@dataclass
class SimulationMetrics:
    """Aggregated output of one platform simulation."""

    requests: List[RequestOutcome] = field(default_factory=list)
    #: (time, instance count) samples over the simulation.
    instance_timeline: List[Tuple[float, int]] = field(default_factory=list)
    cold_starts: int = 0

    def record(self, outcome: RequestOutcome) -> None:
        self.requests.append(outcome)
        if outcome.cold_start:
            self.cold_starts += 1

    def record_instances(self, now_s: float, count: int) -> None:
        self.instance_timeline.append((now_s, count))

    # ------------------------------------------------------------------
    # Aggregations used by the analysis / benchmark modules
    # ------------------------------------------------------------------

    @property
    def num_requests(self) -> int:
        return len(self.requests)

    def execution_durations_s(self) -> List[float]:
        return [r.execution_duration_s for r in self.requests]

    def mean_execution_duration_s(self) -> float:
        durations = self.execution_durations_s()
        return float(np.mean(durations)) if durations else float("nan")

    def percentile_execution_duration_s(self, q: float) -> float:
        durations = self.execution_durations_s()
        return float(np.quantile(durations, q)) if durations else float("nan")

    def cold_start_rate(self) -> float:
        if not self.requests:
            return float("nan")
        return self.cold_starts / len(self.requests)

    def max_instances(self) -> int:
        if not self.instance_timeline:
            return 0
        return max(count for _, count in self.instance_timeline)

    def duration_timeline(self, bucket_s: float = 10.0) -> List[Dict[str, float]]:
        """Mean / median / p95 execution duration per time bucket (Figure 6 right)."""
        if bucket_s <= 0:
            raise ValueError("bucket_s must be positive")
        buckets: Dict[int, List[float]] = {}
        for request in self.requests:
            bucket = int(request.arrival_s // bucket_s)
            buckets.setdefault(bucket, []).append(request.execution_duration_s)
        instance_by_bucket: Dict[int, List[int]] = {}
        for ts, count in self.instance_timeline:
            instance_by_bucket.setdefault(int(ts // bucket_s), []).append(count)
        rows: List[Dict[str, float]] = []
        for bucket in sorted(buckets):
            durations = np.asarray(buckets[bucket])
            instances = instance_by_bucket.get(bucket, [])
            rows.append(
                {
                    "time_s": bucket * bucket_s,
                    "mean_duration_s": float(np.mean(durations)),
                    "median_duration_s": float(np.median(durations)),
                    "p95_duration_s": float(np.quantile(durations, 0.95)),
                    "requests": float(durations.size),
                    "instances": float(np.mean(instances)) if instances else float("nan"),
                }
            )
        return rows

    def summary(self) -> Dict[str, float]:
        durations = self.execution_durations_s()
        if not durations:
            return {"num_requests": 0.0}
        return {
            "num_requests": float(len(durations)),
            "mean_execution_duration_s": float(np.mean(durations)),
            "median_execution_duration_s": float(np.median(durations)),
            "p95_execution_duration_s": float(np.quantile(durations, 0.95)),
            "cold_start_rate": self.cold_start_rate(),
            "max_instances": float(self.max_instances()),
        }
