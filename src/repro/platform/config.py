"""Function and platform configuration objects for the platform simulator."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.platform.autoscaler import AutoscalerConfig
from repro.platform.concurrency import ConcurrencyModel, ContentionModel
from repro.platform.keepalive import KeepAlivePolicy
from repro.platform.serving import ServingArchitecture, ServingOverheadModel

__all__ = ["FunctionConfig", "PlatformConfig"]


@dataclass(frozen=True)
class FunctionConfig:
    """A deployed function: its resource allocation and per-request demand.

    Attributes:
        name: function identifier.
        alloc_vcpus: vCPUs allocated to each sandbox of the function.
        alloc_memory_gb: memory allocated to each sandbox.
        cpu_time_s: CPU time one request needs at full speed (e.g. ~0.16 s for
            the PyAES benchmark at 1 vCPU).
        io_time_s: wall-clock time one request spends blocked on IO (no CPU).
        used_memory_gb: average resident memory during a request.
        init_duration_s: sandbox initialisation (cold start) duration.
    """

    name: str
    alloc_vcpus: float
    alloc_memory_gb: float
    cpu_time_s: float
    io_time_s: float = 0.0
    used_memory_gb: float = 0.0
    init_duration_s: float = 1.0

    def __post_init__(self) -> None:
        if self.alloc_vcpus <= 0 or self.alloc_memory_gb <= 0:
            raise ValueError("allocations must be positive")
        if self.cpu_time_s < 0 or self.io_time_s < 0:
            raise ValueError("cpu_time_s and io_time_s must be >= 0")
        if self.init_duration_s < 0:
            raise ValueError("init_duration_s must be >= 0")
        if self.used_memory_gb < 0:
            raise ValueError("used_memory_gb must be >= 0")

    @property
    def service_time_s(self) -> float:
        """Uncontended execution duration of one request (CPU at full allocation + IO)."""
        return self.cpu_time_s / min(self.alloc_vcpus, 1.0) + self.io_time_s


@dataclass(frozen=True)
class PlatformConfig:
    """The serving-side behaviour of a platform (one §3 configuration)."""

    name: str
    concurrency: ConcurrencyModel
    serving: ServingOverheadModel
    keep_alive: KeepAlivePolicy
    autoscaler: Optional[AutoscalerConfig] = None
    contention: ContentionModel = field(default_factory=ContentionModel)
    #: Extra scheduling / placement delay before a cold sandbox starts initialising.
    placement_delay_s: float = 0.05

    def __post_init__(self) -> None:
        if self.placement_delay_s < 0:
            raise ValueError("placement_delay_s must be >= 0")

    @property
    def architecture(self) -> ServingArchitecture:
        return self.serving.architecture
