"""Command-line interface: run reproduced experiments and print their tables.

Usage::

    repro-serverless-costs list
    repro-serverless-costs run figure2
    repro-serverless-costs run all --format markdown
    repro-serverless-costs trace --requests 50000 --output trace.csv
    repro-serverless-costs trace --simulate backpressure --retry on --trace-out run_trace.json
    repro-serverless-costs sweep --processes 4 --output sweep.csv
    repro-serverless-costs sweep --backend futures --unordered --checkpoint sweep.jsonl
    repro-serverless-costs sweep --backend socket-queue:0.0.0.0:7077 --output sweep.csv
    repro-serverless-costs sweep-worker --connect head-node:7077
    repro-serverless-costs cluster --fleet-sizes 8,16 --policies best_fit,worst_fit --output cluster.csv
    repro-serverless-costs cluster --trace-out cluster_trace.json --telemetry-out cluster_tel.csv
    repro-serverless-costs backpressure --queue-depths 0,8 --policies best_fit,cost_fit --output bp.csv
    repro-serverless-costs backpressure --feedback on --unordered --processes 4 --output bp_fb.csv
    repro-serverless-costs backpressure --feedback on --retry off,on --output bp_retry.csv
    repro-serverless-costs cluster --tenants 2 --tenant-on-exhausted deny --output tenants.csv
    repro-serverless-costs sweep --checkpoint sweep.jsonl --compact-checkpoint
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional

from repro._version import __version__
from repro.analysis.experiments import EXPERIMENTS, list_experiments, run_experiment
from repro.core.report import render_table, to_markdown_table

__all__ = ["main", "build_parser"]


def _add_sweep_execution_flags(parser: argparse.ArgumentParser) -> None:
    """Execution flags shared by every sweeping subcommand.

    ``sweep``, ``cluster`` and ``backpressure`` all fan a grid out through
    :func:`repro.sim.sweep.run_sweep`, so they expose the same knobs: worker
    count, completion order, execution backend, and checkpoint journal.
    """
    parser.add_argument(
        "--processes",
        type=int,
        default=None,
        help="Worker processes (default: sequential; -1 uses every core)",
    )
    parser.add_argument(
        "--unordered",
        action="store_true",
        help="Work-stealing execution (identical rows, better utilisation on uneven grids)",
    )
    parser.add_argument(
        "--backend",
        default=None,
        help=(
            "Execution backend: serial, multiprocessing, futures, or "
            "socket-queue[:host][:port] (a TCP work-queue server that 'sweep-worker' "
            "processes on any machine connect to; default: pick from --processes)"
        ),
    )
    parser.add_argument(
        "--checkpoint",
        default=None,
        help=(
            "JSONL journal path: completed grid points are appended as they finish, "
            "and re-running with the same journal skips them (kill/resume-safe sweeps)"
        ),
    )
    parser.add_argument(
        "--compact-checkpoint",
        action="store_true",
        help=(
            "Before sweeping, rewrite the --checkpoint journal keeping only the last "
            "record per grid point (drops duplicate entries from repeated resumes and "
            "torn lines from kills; atomic replace)"
        ),
    )


def _compact_checkpoint_if_requested(args: "argparse.Namespace") -> Optional[int]:
    """Handle --compact-checkpoint; an exit code on misuse, else None."""
    if not getattr(args, "compact_checkpoint", False):
        return None
    if not args.checkpoint:
        print("--compact-checkpoint requires --checkpoint", file=sys.stderr)
        return 2
    from repro.sim.checkpoint import SweepJournal

    stats = SweepJournal(args.checkpoint).compact()
    print(
        f"compacted checkpoint {args.checkpoint}: kept {stats['kept']} entries, "
        f"dropped {stats['dropped_duplicates']} duplicates and "
        f"{stats['dropped_garbage']} garbage lines"
    )
    return None


def _add_tenancy_flags(parser: argparse.ArgumentParser) -> None:
    """Multi-tenancy flags shared by the cluster and backpressure subcommands."""
    parser.add_argument(
        "--tenants",
        default="off",
        help=(
            "Comma-separated tenancy modes (off, or an integer tenant count N): an "
            "integer meters every deployment's admission against N per-tenant credit "
            "accounts (round-robin assignment) and adds the per-tenant SLO/fairness "
            "columns; default: off, the pre-tenancy behaviour"
        ),
    )
    parser.add_argument(
        "--tenant-credit-capacity",
        type=float,
        default=50.0,
        help="Credit capacity of each tenant's token bucket (with --tenants N)",
    )
    parser.add_argument(
        "--tenant-credit-refill-per-s",
        type=float,
        default=2.0,
        help="Credit refill rate per simulated second (with --tenants N)",
    )
    parser.add_argument(
        "--tenant-on-exhausted",
        choices=("deny", "queue"),
        default="deny",
        help=(
            "What happens to arrivals of a credit-exhausted tenant: deny fails them "
            "with a typed RequestDenied, queue parks them until the bucket refills"
        ),
    )
    parser.add_argument(
        "--tenant-slo-latency-s",
        type=float,
        default=None,
        help=(
            "Per-tenant client-perceived latency SLO in seconds (drives the "
            "slo_attainment/goodput columns; default: no target)"
        ),
    )


def _tenancy_common(args: "argparse.Namespace") -> Dict[str, object]:
    """The tenant_* params an active --tenants axis forwards to every point."""
    common: Dict[str, object] = {
        "tenant_credit_capacity": args.tenant_credit_capacity,
        "tenant_credit_refill_per_s": args.tenant_credit_refill_per_s,
        "tenant_on_exhausted": args.tenant_on_exhausted,
    }
    if args.tenant_slo_latency_s is not None:
        common["tenant_slo_latency_s"] = args.tenant_slo_latency_s
    return common


def _parse_tenants_axis(text: str) -> List[object]:
    """Parse a --tenants list into sweep-axis values ('off' or integer counts)."""
    values: List[object] = []
    for item in text.split(","):
        item = item.strip()
        if not item:
            continue
        values.append(item if item == "off" else int(item))
    return values


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-serverless-costs",
        description=(
            "Reproduction of 'Demystifying Serverless Costs on Public Platforms' (EuroSys 2026): "
            "run the per-figure/per-table experiments against the simulation substrates."
        ),
    )
    parser.add_argument("--version", action="version", version=f"%(prog)s {__version__}")
    subparsers = parser.add_subparsers(dest="command")

    list_parser = subparsers.add_parser("list", help="List reproduced experiments")
    list_parser.set_defaults(command="list")

    run_parser = subparsers.add_parser("run", help="Run one experiment (or 'all')")
    run_parser.add_argument("experiment", help="Experiment id (see 'list') or 'all'")
    run_parser.add_argument(
        "--format", choices=("text", "markdown"), default="text", help="Output table format"
    )

    trace_parser = subparsers.add_parser(
        "trace",
        help="Generate a synthetic trace, or record an execution trace of one simulation",
        description=(
            "Two modes.  Default: generate a synthetic Huawei-like request trace CSV "
            "(requires --output).  With --simulate: run one observed cluster or "
            "backpressure co-simulation and export its request spans / telemetry / "
            "kernel profile (requires at least one of --trace-out, --telemetry-out, "
            "--profile-out).  Observers only read, so the simulated run is "
            "byte-identical to the same seed without them."
        ),
    )
    trace_parser.add_argument("--requests", type=int, default=50_000, help="Number of requests")
    trace_parser.add_argument("--functions", type=int, default=200, help="Number of functions")
    trace_parser.add_argument("--seed", type=int, default=2026, help="PRNG seed")
    trace_parser.add_argument(
        "--output", help="Output CSV path (required in trace-generation mode)"
    )
    trace_parser.add_argument(
        "--simulate",
        choices=("cluster", "backpressure"),
        help="Record one co-simulation instead of generating a synthetic trace",
    )
    trace_parser.add_argument(
        "--trace-out",
        help="Request-span export path (.jsonl for span lines, else Chrome trace JSON)",
    )
    trace_parser.add_argument(
        "--telemetry-out", help="Sampled time-series CSV path (queue depth, cost, utilisation)"
    )
    trace_parser.add_argument("--profile-out", help="Kernel profile JSON path")
    trace_parser.add_argument(
        "--feedback",
        choices=("off", "on"),
        default="on",
        help="Close the state loop in the simulated run (default: on, so traces show failures)",
    )
    trace_parser.add_argument(
        "--retry",
        choices=("off", "on"),
        default="off",
        help="Client retry loop in the simulated run (retried spans link to their parents)",
    )
    trace_parser.add_argument(
        "--queue-depth", type=int, default=4, help="Admission-queue bound (backpressure mode)"
    )
    trace_parser.add_argument(
        "--duration-s", type=float, default=30.0, help="Traffic duration of the simulated run"
    )

    sweep_parser = subparsers.add_parser(
        "sweep",
        help="Run a (platform x workload x rps) scenario grid across worker processes",
        description=(
            "Fan a scenario grid out over the repro.sim sweep orchestrator.  Every grid "
            "point gets a reproducible seed derived from --seed and the point's identity, "
            "so the same command always produces the same rows, sequentially or parallel."
        ),
    )
    sweep_parser.add_argument(
        "--platforms",
        default="aws_lambda_like,gcp_run_like",
        help="Comma-separated platform preset names (see repro.platform.presets)",
    )
    sweep_parser.add_argument(
        "--workloads",
        default="pyaes,io_bound",
        help="Comma-separated workload catalog names (see repro.workloads.functions)",
    )
    sweep_parser.add_argument(
        "--rps", default="1,5,15", help="Comma-separated request rates (requests/second)"
    )
    sweep_parser.add_argument(
        "--duration-s", type=float, default=60.0, help="Traffic duration per scenario (seconds)"
    )
    sweep_parser.add_argument(
        "--arrival-process",
        choices=("constant", "poisson"),
        default="constant",
        help="Arrival process for every scenario",
    )
    _add_sweep_execution_flags(sweep_parser)
    sweep_parser.add_argument("--seed", type=int, default=2026, help="Base seed for per-run seeds")
    sweep_parser.add_argument("--output", help="Also write the result rows to this CSV path")
    sweep_parser.add_argument(
        "--format", choices=("text", "markdown"), default="text", help="Output table format"
    )

    cluster_parser = subparsers.add_parser(
        "cluster",
        help="Co-simulate a host fleet: fleet size x placement policy x keep-alive sweep",
        description=(
            "Sweep cluster co-simulations (every function's platform simulator, the "
            "event-driven fleet, and the live cost meter in one event loop) over a "
            "(fleet size x placement policy x keep-alive) grid.  Seeds derive from "
            "--seed and each grid point's identity, so sequential and parallel runs "
            "produce identical rows."
        ),
    )
    cluster_parser.add_argument(
        "--fleet-sizes",
        default="4,8",
        help="Comma-separated numbers of functions deployed into the cluster",
    )
    cluster_parser.add_argument(
        "--policies",
        default="first_fit,best_fit,worst_fit",
        help="Comma-separated placement policies (first_fit, best_fit, worst_fit)",
    )
    cluster_parser.add_argument(
        "--keep-alive-s",
        default="60",
        help="Comma-separated keep-alive windows in seconds (rescales the preset's window)",
    )
    cluster_parser.add_argument(
        "--platform",
        default="gcp_run_like",
        help="Serving-platform preset every function runs on (see repro.platform.presets)",
    )
    cluster_parser.add_argument(
        "--billing",
        default="gcp_run_request",
        help="Billing model metered live (see repro.billing.catalog)",
    )
    cluster_parser.add_argument(
        "--rps", type=float, default=2.0, help="Request rate per function (requests/second)"
    )
    cluster_parser.add_argument(
        "--duration-s", type=float, default=30.0, help="Traffic duration per scenario (seconds)"
    )
    cluster_parser.add_argument(
        "--host-vcpus", type=float, default=16.0, help="vCPU capacity of each host"
    )
    cluster_parser.add_argument(
        "--host-memory-gb", type=float, default=64.0, help="Memory capacity of each host (GB)"
    )
    cluster_parser.add_argument(
        "--feedback",
        choices=("off", "on"),
        default="off",
        help=(
            "Close the state loop: scheduler throttling stretches request latency and "
            "fleet admission outcomes delay/fail serving (default: off, PR-3 behaviour)"
        ),
    )
    cluster_parser.add_argument(
        "--retry",
        choices=("off", "on"),
        default="off",
        help=(
            "Client retry loop: failed requests are re-injected with exponential "
            "backoff and re-load the fleet (needs --feedback on to have any effect; "
            "default: off, failures stay terminal)"
        ),
    )
    _add_tenancy_flags(cluster_parser)
    _add_sweep_execution_flags(cluster_parser)
    cluster_parser.add_argument("--seed", type=int, default=2026, help="Base seed for per-run seeds")
    cluster_parser.add_argument("--output", help="Also write the result rows to this CSV path")
    cluster_parser.add_argument(
        "--trace-out",
        help=(
            "Record the first grid point's request spans to this path "
            "(.jsonl for span lines, else Chrome trace JSON); rows are unchanged"
        ),
    )
    cluster_parser.add_argument(
        "--telemetry-out",
        help="Record the first grid point's sampled time-series to this CSV; rows are unchanged",
    )
    cluster_parser.add_argument(
        "--format", choices=("text", "markdown"), default="text", help="Output table format"
    )

    backpressure_parser = subparsers.add_parser(
        "backpressure",
        help="Sweep admission backpressure: queue depth x placement policy x heterogeneity",
        description=(
            "Co-simulate capacity-bound fleets with admission backpressure: unplaceable "
            "sandboxes enter a bounded queue and are retried on eviction instead of being "
            "dropped.  Each grid point runs scheduler + platform + fleet + billing in one "
            "kernel; seeds derive from --seed and each grid point's identity, so "
            "sequential and parallel runs produce identical rows."
        ),
    )
    backpressure_parser.add_argument(
        "--queue-depths",
        default="0,4,32",
        help="Comma-separated admission-queue bounds (0 disables queueing)",
    )
    backpressure_parser.add_argument(
        "--policies",
        default="best_fit,cost_fit",
        help="Comma-separated placement policies (first_fit, best_fit, worst_fit, cost_fit)",
    )
    backpressure_parser.add_argument(
        "--heterogeneity",
        default="homogeneous,two_tier",
        help="Comma-separated fleet shapes (homogeneous, two_tier)",
    )
    backpressure_parser.add_argument(
        "--queue-discipline",
        choices=("fifo", "smallest_first"),
        default="fifo",
        help="Order in which queued sandboxes are retried on capacity release",
    )
    backpressure_parser.add_argument(
        "--max-hosts", type=int, default=2, help="Host cap per fleet (small saturates the fleet)"
    )
    backpressure_parser.add_argument(
        "--num-functions", type=int, default=6, help="Functions deployed into the cluster"
    )
    backpressure_parser.add_argument(
        "--platform",
        default="gcp_run_like",
        help="Serving-platform preset every function runs on (see repro.platform.presets)",
    )
    backpressure_parser.add_argument(
        "--billing",
        default="gcp_run_request",
        help="Billing model metered live (see repro.billing.catalog)",
    )
    backpressure_parser.add_argument(
        "--rps", type=float, default=2.0, help="Request rate per function (requests/second)"
    )
    backpressure_parser.add_argument(
        "--duration-s", type=float, default=30.0, help="Traffic duration per scenario (seconds)"
    )
    backpressure_parser.add_argument(
        "--no-scheduler",
        action="store_true",
        help="Skip the co-simulated CPU-bandwidth scheduler engine",
    )
    backpressure_parser.add_argument(
        "--feedback",
        choices=("off", "on"),
        default="off",
        help=(
            "Close the state loop: queued cold starts defer sandbox readiness, rejected "
            "ones fail their requests, throttling stretches latency (default: off)"
        ),
    )
    backpressure_parser.add_argument(
        "--retry",
        default="off",
        help=(
            "Comma-separated client-retry modes (off, on).  'on' re-injects failed "
            "requests with exponential backoff so they re-load the fleet (needs "
            "--feedback on to have any effect); 'off,on' sweeps the retry axis and "
            "the retry_amplification column compares the twin rows"
        ),
    )
    _add_tenancy_flags(backpressure_parser)
    _add_sweep_execution_flags(backpressure_parser)
    backpressure_parser.add_argument(
        "--seed", type=int, default=2026, help="Base seed for per-run seeds"
    )
    backpressure_parser.add_argument("--output", help="Also write the result rows to this CSV path")
    backpressure_parser.add_argument(
        "--trace-out",
        help=(
            "Record the first grid point's request spans to this path "
            "(.jsonl for span lines, else Chrome trace JSON); rows are unchanged"
        ),
    )
    backpressure_parser.add_argument(
        "--telemetry-out",
        help="Record the first grid point's sampled time-series to this CSV; rows are unchanged",
    )
    backpressure_parser.add_argument(
        "--format", choices=("text", "markdown"), default="text", help="Output table format"
    )

    worker_parser = subparsers.add_parser(
        "sweep-worker",
        help="Join a socket-queue sweep as a remote worker process",
        description=(
            "Connect to a sweep running with --backend socket-queue[:host]:port "
            "(on this machine or another) and execute grid points from its work "
            "queue until the sweep finishes.  Start as many workers on as many "
            "machines as you like; results are byte-identical regardless of how "
            "the work lands.  Only connect to sweep servers you trust: the work "
            "protocol is pickle over TCP."
        ),
    )
    worker_parser.add_argument(
        "--connect",
        required=True,
        metavar="HOST:PORT",
        help="Address of the sweep's socket-queue server (a bare port implies 127.0.0.1)",
    )
    worker_parser.add_argument(
        "--retry-window-s",
        type=float,
        default=30.0,
        help="Keep retrying the initial connection for this long (seconds)",
    )
    worker_parser.add_argument(
        "--quiet", action="store_true", help="Suppress per-point progress lines"
    )
    return parser


def _warn_inert_retry(feedback: str, retry_active: bool) -> None:
    """Retries only engage when the feedback loop can fail requests.

    With ``feedback="off"`` nothing ever fails, so ``--retry on`` would run
    to completion reporting all-zero retry columns that read as "retries had
    no effect" rather than "retries never engaged" -- warn loudly instead of
    leaving the user to decode that.
    """
    if retry_active and feedback == "off":
        print(
            "warning: --retry on has no effect with --feedback off "
            "(requests only fail in the closed loop); add --feedback on",
            file=sys.stderr,
        )


def _obs_first_point_extra(args: "argparse.Namespace"):
    """Artifact params for the first grid point, from --trace-out/--telemetry-out.

    Returns ``None`` when neither flag was given (no obs attached anywhere);
    otherwise prints where the recording lands, because the artifacts cover
    one representative point, not the whole grid.
    """
    extra = {}
    if getattr(args, "trace_out", None):
        extra["trace_out"] = args.trace_out
    if getattr(args, "telemetry_out", None):
        extra["telemetry_out"] = args.telemetry_out
    if not extra:
        return None
    print(
        "recording observability artifacts for the first grid point: "
        + ", ".join(f"{key}={value}" for key, value in sorted(extra.items())),
        file=sys.stderr,
    )
    return extra


def _error_message(error: BaseException) -> str:
    """Human-readable message (str() of a KeyError is the repr of its argument)."""
    if isinstance(error, KeyError) and error.args:
        return str(error.args[0])
    return str(error)


def _cmd_list() -> int:
    rows = [
        {"experiment": e.experiment_id, "title": e.title, "modules": e.modules}
        for e in EXPERIMENTS.values()
    ]
    print(render_table(rows, columns=["experiment", "title", "modules"]))
    return 0


def _cmd_run(experiment: str, output_format: str) -> int:
    ids = list_experiments() if experiment == "all" else [experiment]
    for experiment_id in ids:
        try:
            rows = run_experiment(experiment_id)
        except KeyError as error:
            print(_error_message(error), file=sys.stderr)
            return 2
        title = f"== {experiment_id}: {EXPERIMENTS[experiment_id].title} =="
        print(title)
        if output_format == "markdown":
            print(to_markdown_table(rows))
        else:
            print(render_table(rows))
        print()
    return 0


def _cmd_trace(args: "argparse.Namespace") -> int:
    if args.simulate:
        return _cmd_trace_simulate(args)
    if not args.output:
        print("trace generation needs --output (or pass --simulate to record a run)", file=sys.stderr)
        return 2

    from repro.traces.generator import TraceGenerator, TraceGeneratorConfig
    from repro.traces.io import write_requests_csv

    config = TraceGeneratorConfig(
        num_requests=args.requests, num_functions=args.functions, seed=args.seed
    )
    trace = TraceGenerator(config).generate()
    count = write_requests_csv(args.output, trace.requests)
    print(f"wrote {count} requests to {args.output}")
    return 0


def _cmd_trace_simulate(args: "argparse.Namespace") -> int:
    """Run one observed co-simulation point and export its obs artifacts."""
    artifacts = {
        "trace_out": args.trace_out,
        "telemetry_out": args.telemetry_out,
        "profile_out": args.profile_out,
    }
    if not any(artifacts.values()):
        print(
            "trace --simulate needs at least one of --trace-out/--telemetry-out/--profile-out",
            file=sys.stderr,
        )
        return 2
    _warn_inert_retry(args.feedback, args.retry == "on")
    params = {
        "duration_s": args.duration_s,
        "feedback": args.feedback,
        **{key: value for key, value in artifacts.items() if value},
    }
    if args.retry != "off":
        params["retry"] = args.retry
    if args.simulate == "backpressure":
        from repro.analysis.backpressure import backpressure_point as runner

        params.update(
            queue_depth=args.queue_depth,
            placement_policy="best_fit",
            heterogeneity="homogeneous",
        )
    else:
        from repro.analysis.cluster_costs import cluster_point as runner

        params.update(num_functions=4, placement_policy="best_fit", keep_alive_s=60.0)
    row = runner(params, seed=args.seed)
    print(f"== trace --simulate {args.simulate} (seed {args.seed}) ==")
    print(render_table([row]))
    for key, value in sorted(artifacts.items()):
        if value:
            print(f"wrote {key.replace('_out', '')} artifact to {value}")
    return 0


def _cmd_sweep(args: "argparse.Namespace") -> int:
    from repro.sim.backends import SweepPointError
    from repro.sim.sweep import build_grid, run_sweep

    platforms = [name.strip() for name in args.platforms.split(",") if name.strip()]
    workloads = [name.strip() for name in args.workloads.split(",") if name.strip()]
    try:
        rates = [float(value) for value in args.rps.split(",") if value.strip()]
    except ValueError:
        print(f"invalid --rps list: {args.rps!r}", file=sys.stderr)
        return 2
    if not platforms or not workloads or not rates:
        print("sweep needs at least one platform, workload, and rps value", file=sys.stderr)
        return 2
    code = _compact_checkpoint_if_requested(args)
    if code is not None:
        return code
    try:
        scenarios = build_grid(
            runner="repro.sim.sweep:platform_point",
            axes={"platform": platforms, "workload": workloads, "rps": rates},
            common={"duration_s": args.duration_s, "arrival_process": args.arrival_process},
            base_seed=args.seed,
        )
        store = run_sweep(
            scenarios,
            processes=args.processes,
            ordered=not args.unordered,
            backend=args.backend,
            checkpoint=args.checkpoint,
        )
    except (KeyError, ValueError, SweepPointError) as error:
        print(_error_message(error), file=sys.stderr)
        return 2
    print(f"== sweep: {len(scenarios)} scenarios (base seed {args.seed}) ==")
    if args.format == "markdown":
        print(to_markdown_table(store.rows))
    else:
        print(render_table(store.rows))
    if args.output:
        written = store.to_csv(args.output)
        print(f"wrote {written} rows to {args.output}")
    return 0


def _cmd_cluster(args: "argparse.Namespace") -> int:
    from repro.analysis.cluster_costs import cluster_cost_sweep
    from repro.sim.backends import SweepPointError

    try:
        fleet_sizes = [int(value) for value in args.fleet_sizes.split(",") if value.strip()]
        keep_alive = [float(value) for value in args.keep_alive_s.split(",") if value.strip()]
    except ValueError:
        print(
            f"invalid --fleet-sizes/--keep-alive-s list: {args.fleet_sizes!r} / {args.keep_alive_s!r}",
            file=sys.stderr,
        )
        return 2
    policies = [name.strip() for name in args.policies.split(",") if name.strip()]
    if not fleet_sizes or not policies or not keep_alive:
        print("cluster needs at least one fleet size, policy, and keep-alive value", file=sys.stderr)
        return 2
    try:
        tenants = _parse_tenants_axis(args.tenants)
    except ValueError:
        print(f"invalid --tenants list: {args.tenants!r}", file=sys.stderr)
        return 2
    code = _compact_checkpoint_if_requested(args)
    if code is not None:
        return code
    common = {
        "platform": args.platform,
        "billing": args.billing,
        "rps_per_function": args.rps,
        "duration_s": args.duration_s,
        "host_vcpus": args.host_vcpus,
        "host_memory_gb": args.host_memory_gb,
        "feedback": args.feedback,
    }
    if args.retry != "off":
        # Only forward an active retry mode: without the param the rows (and
        # therefore default CSVs) stay byte-identical to the pre-retry CLI.
        common["retry"] = args.retry
    axes = {
        "num_functions": fleet_sizes,
        "placement_policy": policies,
        "keep_alive_s": keep_alive,
    }
    if tenants and tenants != ["off"]:
        # Same gating contract as retry: the axis (and the tenant knobs) only
        # exist when tenancy is requested, so default CSVs stay byte-identical.
        axes["tenants"] = tenants
        common.update(_tenancy_common(args))
    _warn_inert_retry(args.feedback, args.retry == "on")
    try:
        store = cluster_cost_sweep(
            axes=axes,
            common=common,
            base_seed=args.seed,
            processes=args.processes,
            ordered=not args.unordered,
            first_point_extra=_obs_first_point_extra(args),
            backend=args.backend,
            checkpoint=args.checkpoint,
        )
    except (KeyError, ValueError, SweepPointError) as error:
        print(_error_message(error), file=sys.stderr)
        return 2
    print(f"== cluster: {len(store)} scenarios (base seed {args.seed}) ==")
    if args.format == "markdown":
        print(to_markdown_table(store.rows))
    else:
        print(render_table(store.rows))
    if args.output:
        written = store.to_csv(args.output)
        print(f"wrote {written} rows to {args.output}")
    return 0


def _cmd_backpressure(args: "argparse.Namespace") -> int:
    from repro.analysis.backpressure import backpressure_sweep
    from repro.sim.backends import SweepPointError

    try:
        queue_depths = [int(value) for value in args.queue_depths.split(",") if value.strip()]
    except ValueError:
        print(f"invalid --queue-depths list: {args.queue_depths!r}", file=sys.stderr)
        return 2
    policies = [name.strip() for name in args.policies.split(",") if name.strip()]
    heterogeneity = [name.strip() for name in args.heterogeneity.split(",") if name.strip()]
    retries = [name.strip() for name in args.retry.split(",") if name.strip()]
    if not queue_depths or not policies or not heterogeneity or not retries:
        print(
            "backpressure needs at least one queue depth, policy, heterogeneity and retry value",
            file=sys.stderr,
        )
        return 2
    try:
        tenants = _parse_tenants_axis(args.tenants)
    except ValueError:
        print(f"invalid --tenants list: {args.tenants!r}", file=sys.stderr)
        return 2
    code = _compact_checkpoint_if_requested(args)
    if code is not None:
        return code
    axes = {
        "queue_depth": queue_depths,
        "placement_policy": policies,
        "heterogeneity": heterogeneity,
    }
    if retries != ["off"]:
        # An active retry mode (or a multi-value list) becomes a sweep axis;
        # the bare default keeps rows byte-identical to the pre-retry CLI.
        axes["retry"] = retries
    common: Dict[str, object] = {
        "queue_discipline": args.queue_discipline,
        "max_hosts": args.max_hosts,
        "num_functions": args.num_functions,
        "platform": args.platform,
        "billing": args.billing,
        "rps_per_function": args.rps,
        "duration_s": args.duration_s,
        "with_scheduler": not args.no_scheduler,
        "feedback": args.feedback,
    }
    if tenants and tenants != ["off"]:
        # Same gating contract as retry: the axis (and the tenant knobs) only
        # exist when tenancy is requested, so default CSVs stay byte-identical.
        axes["tenants"] = tenants
        common.update(_tenancy_common(args))
    _warn_inert_retry(args.feedback, "on" in retries)
    try:
        store = backpressure_sweep(
            axes=axes,
            common=common,
            base_seed=args.seed,
            processes=args.processes,
            ordered=not args.unordered,
            first_point_extra=_obs_first_point_extra(args),
            backend=args.backend,
            checkpoint=args.checkpoint,
        )
    except (KeyError, ValueError, SweepPointError) as error:
        print(_error_message(error), file=sys.stderr)
        return 2
    print(f"== backpressure: {len(store)} scenarios (base seed {args.seed}) ==")
    if args.format == "markdown":
        print(to_markdown_table(store.rows))
    else:
        print(render_table(store.rows))
    if args.output:
        written = store.to_csv(args.output)
        print(f"wrote {written} rows to {args.output}")
    return 0


def _cmd_sweep_worker(args: "argparse.Namespace") -> int:
    from repro.sim.backends import run_sweep_worker

    host, _, port_text = args.connect.rpartition(":")
    if not host:
        # A bare port means "the sweep runs on this machine".
        host = "127.0.0.1"
    try:
        port = int(port_text)
    except ValueError:
        port = -1
    if not 0 < port < 65536:
        print(f"invalid --connect address {args.connect!r}: expected HOST:PORT", file=sys.stderr)
        return 2
    log = None if args.quiet else (lambda message: print(message, file=sys.stderr))
    try:
        completed = run_sweep_worker(
            host, port, retry_window_s=args.retry_window_s, log=log
        )
    except OSError as error:
        print(f"could not reach sweep server at {host}:{port}: {error}", file=sys.stderr)
        return 2
    print(f"sweep worker done: completed {completed} points")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "run":
        return _cmd_run(args.experiment, args.format)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "sweep":
        return _cmd_sweep(args)
    if args.command == "cluster":
        return _cmd_cluster(args)
    if args.command == "backpressure":
        return _cmd_backpressure(args)
    if args.command == "sweep-worker":
        return _cmd_sweep_worker(args)
    parser.print_help()
    return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
