"""Command-line interface: run reproduced experiments and print their tables.

Usage::

    repro-serverless-costs list
    repro-serverless-costs run figure2
    repro-serverless-costs run all --format markdown
    repro-serverless-costs trace --requests 50000 --output trace.csv
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro._version import __version__
from repro.analysis.experiments import EXPERIMENTS, list_experiments, run_experiment
from repro.core.report import render_table, to_markdown_table

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-serverless-costs",
        description=(
            "Reproduction of 'Demystifying Serverless Costs on Public Platforms' (EuroSys 2026): "
            "run the per-figure/per-table experiments against the simulation substrates."
        ),
    )
    parser.add_argument("--version", action="version", version=f"%(prog)s {__version__}")
    subparsers = parser.add_subparsers(dest="command")

    list_parser = subparsers.add_parser("list", help="List reproduced experiments")
    list_parser.set_defaults(command="list")

    run_parser = subparsers.add_parser("run", help="Run one experiment (or 'all')")
    run_parser.add_argument("experiment", help="Experiment id (see 'list') or 'all'")
    run_parser.add_argument(
        "--format", choices=("text", "markdown"), default="text", help="Output table format"
    )

    trace_parser = subparsers.add_parser("trace", help="Generate a synthetic Huawei-like trace")
    trace_parser.add_argument("--requests", type=int, default=50_000, help="Number of requests")
    trace_parser.add_argument("--functions", type=int, default=200, help="Number of functions")
    trace_parser.add_argument("--seed", type=int, default=2026, help="PRNG seed")
    trace_parser.add_argument("--output", required=True, help="Output CSV path")
    return parser


def _cmd_list() -> int:
    rows = [
        {"experiment": e.experiment_id, "title": e.title, "modules": e.modules}
        for e in EXPERIMENTS.values()
    ]
    print(render_table(rows, columns=["experiment", "title", "modules"]))
    return 0


def _cmd_run(experiment: str, output_format: str) -> int:
    ids = list_experiments() if experiment == "all" else [experiment]
    for experiment_id in ids:
        try:
            rows = run_experiment(experiment_id)
        except KeyError as error:
            print(str(error), file=sys.stderr)
            return 2
        title = f"== {experiment_id}: {EXPERIMENTS[experiment_id].title} =="
        print(title)
        if output_format == "markdown":
            print(to_markdown_table(rows))
        else:
            print(render_table(rows))
        print()
    return 0


def _cmd_trace(requests: int, functions: int, seed: int, output: str) -> int:
    from repro.traces.generator import TraceGenerator, TraceGeneratorConfig
    from repro.traces.io import write_requests_csv

    config = TraceGeneratorConfig(num_requests=requests, num_functions=functions, seed=seed)
    trace = TraceGenerator(config).generate()
    count = write_requests_csv(output, trace.requests)
    print(f"wrote {count} requests to {output}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "run":
        return _cmd_run(args.experiment, args.format)
    if args.command == "trace":
        return _cmd_trace(args.requests, args.functions, args.seed, args.output)
    parser.print_help()
    return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
