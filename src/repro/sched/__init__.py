"""OS CPU scheduling simulator: cgroup CPU bandwidth control under CFS / EEVDF (paper §4).

The simulator reproduces the mechanism the paper identifies as the source of
CPU overallocation on public serverless platforms:

- each cgroup has a *CPU bandwidth control* state (period ``P``, quota ``Q``,
  a global runtime pool refilled once per period by an hrtimer, and per-CPU
  local pools that acquire runtime from the global pool in slices),
- runtime accounting happens at scheduler ticks (``CONFIG_HZ``) and context
  switches, so a task can *overrun* its quota by up to roughly one tick before
  it is throttled,
- when both pools are exhausted the task is throttled and waits for the next
  period refill (possibly several periods when it has accumulated debt).

The engine is a discrete-event simulation of that state machine; the profiler
implements the paper's Algorithm 1 (user-space throttle detection from
monotonic-clock jumps), and :mod:`repro.sched.analytical` implements the
closed-form duration model of Equation (2).
"""

from repro.sched.task import SimTask, TaskPhase, TaskState
from repro.sched.cgroup import BandwidthConfig, BandwidthController
from repro.sched.engine import SchedulerConfig, SchedulerSim, SimulationResult, TaskResult
from repro.sched.policies import SchedulingPolicy
from repro.sched.profiler import ThrottleEvent, ThrottleProfile, profile_task_result
from repro.sched.analytical import (
    expected_duration_reciprocal,
    theoretical_duration,
    theoretical_duration_series,
)

__all__ = [
    "SimTask",
    "TaskPhase",
    "TaskState",
    "BandwidthConfig",
    "BandwidthController",
    "SchedulerConfig",
    "SchedulerSim",
    "SimulationResult",
    "TaskResult",
    "SchedulingPolicy",
    "ThrottleEvent",
    "ThrottleProfile",
    "profile_task_result",
    "expected_duration_reciprocal",
    "theoretical_duration",
    "theoretical_duration_series",
]
