"""cgroup CPU bandwidth control: global/local runtime pools, slices, throttling.

This mirrors the kernel's ``cfs_bandwidth`` / ``cfs_rq`` runtime accounting
(`kernel/sched/fair.c`):

- the cgroup has a *global pool* refilled to ``quota`` once per ``period`` by
  an hrtimer callback,
- each CPU's runqueue has a *local pool* (``runtime_remaining``); consumed
  runtime is subtracted from it at accounting points (scheduler ticks and
  context switches),
- when the local pool is depleted it acquires up to
  ``sched_cfs_bandwidth_slice`` (default 5 ms) from the global pool,
- if the global pool cannot bring the local pool positive the runqueue is
  throttled until a later refill pays the accumulated debt.

The same structure applies to kernels with the EEVDF scheduler (the paper
notes EEVDF keeps the CFS bandwidth-control interface).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

__all__ = ["BandwidthConfig", "BandwidthController", "CpuLocalPool"]

#: Kernel default for sched_cfs_bandwidth_slice_us (5 ms).
DEFAULT_BANDWIDTH_SLICE_S = 0.005


@dataclass(frozen=True)
class BandwidthConfig:
    """Static CPU bandwidth control parameters of one cgroup.

    Attributes:
        period_s: enforcement period ``P`` (cpu.cfs_period_us).
        quota_s: runtime quota ``Q`` per period (cpu.cfs_quota_us); ``None``
            or a non-positive value disables bandwidth control (unlimited).
        slice_s: how much runtime a local pool acquires from the global pool
            at a time (sched_cfs_bandwidth_slice).
    """

    period_s: float
    quota_s: float
    slice_s: float = DEFAULT_BANDWIDTH_SLICE_S

    def __post_init__(self) -> None:
        if self.period_s <= 0:
            raise ValueError("period_s must be positive")
        if self.slice_s <= 0:
            raise ValueError("slice_s must be positive")

    @property
    def enabled(self) -> bool:
        """Bandwidth control is active only with a positive, finite quota."""
        return self.quota_s is not None and self.quota_s > 0 and self.quota_s != float("inf")

    @property
    def cpu_fraction(self) -> float:
        """The CPU share the limit targets (quota / period)."""
        if not self.enabled:
            return float("inf")
        return self.quota_s / self.period_s

    @classmethod
    def for_vcpu_fraction(
        cls, vcpu_fraction: float, period_s: float, slice_s: float = DEFAULT_BANDWIDTH_SLICE_S
    ) -> "BandwidthConfig":
        """Build a config for a fractional vCPU allocation (quota = fraction x period)."""
        if vcpu_fraction <= 0:
            raise ValueError("vcpu_fraction must be positive")
        return cls(period_s=period_s, quota_s=vcpu_fraction * period_s, slice_s=slice_s)


@dataclass
class CpuLocalPool:
    """Per-CPU runtime accounting state (cfs_rq.runtime_remaining)."""

    cpu_id: int
    runtime_remaining_s: float = 0.0
    throttled: bool = False
    throttle_start_s: float = 0.0
    nr_throttled: int = 0
    throttled_time_s: float = 0.0


class BandwidthController:
    """Runtime accounting and throttling decisions for one cgroup.

    The engine calls :meth:`account` at every accounting point with the CPU
    time consumed since the previous accounting point, and :meth:`refill` at
    every period boundary.  The controller answers whether the CPU must be
    throttled and tracks throttle statistics.
    """

    def __init__(self, config: BandwidthConfig, num_cpus: int = 1) -> None:
        if num_cpus <= 0:
            raise ValueError("num_cpus must be positive")
        self.config = config
        self.global_runtime_s: float = config.quota_s if config.enabled else float("inf")
        self.local: Dict[int, CpuLocalPool] = {
            cpu: CpuLocalPool(cpu_id=cpu) for cpu in range(num_cpus)
        }
        self.nr_periods: int = 0

    # ------------------------------------------------------------------
    # Accounting (update_curr / account_cfs_rq_runtime)
    # ------------------------------------------------------------------

    def account(self, cpu_id: int, consumed_s: float, now_s: float) -> bool:
        """Charge ``consumed_s`` of runtime against CPU ``cpu_id``.

        Returns ``True`` when the CPU must be throttled (both pools exhausted).
        """
        pool = self.local[cpu_id]
        if not self.config.enabled:
            return False
        pool.runtime_remaining_s -= consumed_s
        if pool.runtime_remaining_s > 0:
            return False
        self._assign_runtime(pool)
        if pool.runtime_remaining_s > 0:
            return False
        if not pool.throttled:
            pool.throttled = True
            pool.throttle_start_s = now_s
            pool.nr_throttled += 1
        return True

    def _assign_runtime(self, pool: CpuLocalPool) -> None:
        """Acquire up to one slice of runtime from the global pool (assign_cfs_rq_runtime)."""
        if self.global_runtime_s <= 0:
            return
        amount = min(self.config.slice_s, self.global_runtime_s)
        pool.runtime_remaining_s += amount
        self.global_runtime_s -= amount

    def is_throttled(self, cpu_id: int) -> bool:
        return self.local[cpu_id].throttled

    def throttle_if_exhausted(self, cpu_id: int, now_s: float, threshold_s: float = 1e-9) -> bool:
        """Throttle the CPU when its usable runtime is (effectively) zero.

        Used by event-driven quota enforcement, which must be able to throttle
        exactly at exhaustion rather than waiting for the next accounting
        point; returns True when the CPU is (now) throttled.
        """
        pool = self.local[cpu_id]
        if not self.config.enabled:
            return False
        if pool.throttled:
            return True
        if pool.runtime_remaining_s <= threshold_s:
            self._assign_runtime(pool)
        if pool.runtime_remaining_s > threshold_s:
            return False
        pool.throttled = True
        pool.throttle_start_s = now_s
        pool.nr_throttled += 1
        return True

    # ------------------------------------------------------------------
    # Period refill (hrtimer callback: __refill_cfs_bandwidth_runtime +
    # distribute_cfs_runtime)
    # ------------------------------------------------------------------

    def refill(self, now_s: float) -> List[int]:
        """Refill the global pool and pay back throttled CPUs' debt.

        Returns the list of CPU ids that were unthrottled by this refill.
        Mirrors the kernel's behaviour: each throttled runqueue receives just
        enough runtime to bring its local pool (slightly) positive, as long as
        the global pool can cover it; CPUs whose debt exceeds the refreshed
        quota stay throttled and wait for later periods.
        """
        if not self.config.enabled:
            return []
        self.nr_periods += 1
        self.global_runtime_s = self.config.quota_s
        unthrottled: List[int] = []
        for pool in self.local.values():
            if not pool.throttled:
                continue
            needed = -pool.runtime_remaining_s + 1e-9
            if needed <= 0:
                needed = 1e-9
            grant = min(needed, self.global_runtime_s)
            pool.runtime_remaining_s += grant
            self.global_runtime_s -= grant
            if pool.runtime_remaining_s > 0:
                pool.throttled = False
                pool.throttled_time_s += now_s - pool.throttle_start_s
                unthrottled.append(pool.cpu_id)
        return unthrottled

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------

    def stats(self) -> Dict[str, float]:
        """Aggregate bandwidth statistics across CPUs (cpu.stat equivalents)."""
        return {
            "nr_periods": float(self.nr_periods),
            "nr_throttled": float(sum(p.nr_throttled for p in self.local.values())),
            "throttled_time_s": sum(p.throttled_time_s for p in self.local.values()),
        }
