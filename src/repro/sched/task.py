"""Tasks scheduled by the bandwidth-control simulator.

A task is a sequence of phases.  A *compute* phase needs a given amount of CPU
time; an *io* phase blocks (consumes no CPU) for a given wall-clock duration.
CPU-bound workloads have a single compute phase; I/O-bound workloads alternate
compute and io phases; the paper's intermittent-execution exploit decomposes a
long compute phase into many short ones separated by invocations.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

__all__ = ["TaskState", "TaskPhase", "SimTask"]

_task_counter = itertools.count()


class TaskState(str, enum.Enum):
    """Lifecycle states of a simulated task."""

    WAITING = "waiting"  # not yet arrived
    RUNNABLE = "runnable"  # ready to run, not currently on a CPU
    RUNNING = "running"  # currently executing on a CPU
    BLOCKED = "blocked"  # in an io phase (off the runqueue)
    THROTTLED = "throttled"  # runnable but its cgroup is throttled
    DONE = "done"  # all phases finished


class PhaseKind(str, enum.Enum):
    COMPUTE = "compute"
    IO = "io"


@dataclass
class TaskPhase:
    """One phase of a task: either CPU work or an IO wait."""

    kind: PhaseKind
    duration_s: float

    def __post_init__(self) -> None:
        if self.duration_s < 0:
            raise ValueError("phase duration must be >= 0")

    @classmethod
    def compute(cls, cpu_seconds: float) -> "TaskPhase":
        return cls(kind=PhaseKind.COMPUTE, duration_s=cpu_seconds)

    @classmethod
    def io(cls, wall_seconds: float) -> "TaskPhase":
        return cls(kind=PhaseKind.IO, duration_s=wall_seconds)


@dataclass
class SimTask:
    """A schedulable task.

    Attributes:
        phases: the task's phase sequence.
        arrival_s: when the task becomes runnable.
        name: identifier used in results.
        weight: scheduling weight (nice-equivalent); all equal by default.
    """

    phases: Sequence[TaskPhase]
    arrival_s: float = 0.0
    name: str = ""
    weight: float = 1.0

    # Mutable simulation state (managed by the engine).
    state: TaskState = field(default=TaskState.WAITING, init=False)
    phase_index: int = field(default=0, init=False)
    phase_remaining_s: float = field(default=0.0, init=False)
    vruntime: float = field(default=0.0, init=False)
    virtual_deadline: float = field(default=0.0, init=False)
    cpu_consumed_s: float = field(default=0.0, init=False)
    completion_time_s: Optional[float] = field(default=None, init=False)
    #: Wall-clock intervals during which the task was actually running on a CPU.
    run_segments: List[Tuple[float, float]] = field(default_factory=list, init=False)
    #: (time, duration) pairs for every throttle the task experienced.
    throttle_segments: List[Tuple[float, float]] = field(default_factory=list, init=False)

    def __post_init__(self) -> None:
        if not self.phases:
            raise ValueError("a task needs at least one phase")
        if self.arrival_s < 0:
            raise ValueError("arrival_s must be >= 0")
        if self.weight <= 0:
            raise ValueError("weight must be positive")
        if not self.name:
            self.name = f"task-{next(_task_counter)}"
        self.phase_remaining_s = self.phases[0].duration_s

    # ------------------------------------------------------------------
    # Constructors for common workload shapes
    # ------------------------------------------------------------------

    @classmethod
    def cpu_bound(cls, cpu_seconds: float, arrival_s: float = 0.0, name: str = "") -> "SimTask":
        """A purely compute-bound task (e.g. PyAES)."""
        return cls(phases=[TaskPhase.compute(cpu_seconds)], arrival_s=arrival_s, name=name)

    @classmethod
    def io_bound(
        cls,
        compute_burst_s: float,
        io_wait_s: float,
        num_bursts: int,
        arrival_s: float = 0.0,
        name: str = "",
    ) -> "SimTask":
        """A task alternating short compute bursts with IO waits."""
        if num_bursts <= 0:
            raise ValueError("num_bursts must be positive")
        phases: List[TaskPhase] = []
        for _ in range(num_bursts):
            phases.append(TaskPhase.compute(compute_burst_s))
            phases.append(TaskPhase.io(io_wait_s))
        return cls(phases=phases, arrival_s=arrival_s, name=name)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def current_phase(self) -> Optional[TaskPhase]:
        if self.phase_index >= len(self.phases):
            return None
        return self.phases[self.phase_index]

    @property
    def total_cpu_demand_s(self) -> float:
        """Total CPU time the task needs across all compute phases."""
        return sum(p.duration_s for p in self.phases if p.kind is PhaseKind.COMPUTE)

    @property
    def is_done(self) -> bool:
        return self.state is TaskState.DONE

    def advance_phase(self) -> None:
        """Move to the next phase; the engine calls this when a phase finishes."""
        self.phase_index += 1
        if self.phase_index < len(self.phases):
            self.phase_remaining_s = self.phases[self.phase_index].duration_s
        else:
            self.phase_remaining_s = 0.0
