"""Provider scheduling presets inferred by the paper (Table 3) and local-run settings.

The paper infers each provider's CPU bandwidth-control period and scheduler
tick frequency by profiling functions from user space and matching the
observed throttle patterns against local runs with known settings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.sched.cgroup import BandwidthConfig
from repro.sched.engine import SchedulerConfig
from repro.sched.policies import PolicyParameters, SchedulingPolicy

__all__ = ["ProviderSchedulingPreset", "PROVIDER_SCHED_PRESETS", "scheduler_config_for"]


@dataclass(frozen=True)
class ProviderSchedulingPreset:
    """One row of the paper's Table 3: inferred scheduling parameters of a provider."""

    provider: str
    period_s: float
    tick_hz: int
    policy: SchedulingPolicy = SchedulingPolicy.CFS
    description: str = ""


#: Table 3 (as of 2025-05-15): providers do not share a unanimous configuration.
PROVIDER_SCHED_PRESETS: Dict[str, ProviderSchedulingPreset] = {
    "aws_lambda": ProviderSchedulingPreset(
        provider="aws_lambda",
        period_s=0.020,
        tick_hz=250,
        description="AWS Lambda: 20 ms bandwidth period, CONFIG_HZ=250",
    ),
    "gcp_run_functions": ProviderSchedulingPreset(
        provider="gcp_run_functions",
        period_s=0.100,
        tick_hz=1000,
        description="Google Cloud Run functions: 100 ms bandwidth period, CONFIG_HZ=1000",
    ),
    "ibm_code_engine": ProviderSchedulingPreset(
        provider="ibm_code_engine",
        period_s=0.010,
        tick_hz=250,
        description="IBM Cloud Code Engine functions: 10 ms bandwidth period, CONFIG_HZ=250",
    ),
}


def scheduler_config_for(
    provider: str,
    vcpu_fraction: float,
    horizon_s: float = 60.0,
    tick_phase_s: float = 0.0,
    period_phase_s: float = 0.0,
    policy: SchedulingPolicy = SchedulingPolicy.CFS,
) -> SchedulerConfig:
    """Build a :class:`SchedulerConfig` matching one provider preset and vCPU allocation."""
    preset = PROVIDER_SCHED_PRESETS[provider]
    bandwidth = BandwidthConfig.for_vcpu_fraction(vcpu_fraction, period_s=preset.period_s)
    return SchedulerConfig(
        bandwidth=bandwidth,
        tick_hz=preset.tick_hz,
        policy=PolicyParameters(policy=policy),
        tick_phase_s=tick_phase_s,
        period_phase_s=period_phase_s,
        horizon_s=horizon_s,
    )
