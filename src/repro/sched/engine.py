"""Discrete-event simulation of CPU scheduling under cgroup bandwidth control.

The engine advances time from event to event.  Events are:

- task arrivals and IO wake-ups,
- compute-phase completions,
- scheduler ticks (``CONFIG_HZ``): runtime accounting, throttling checks and
  preemption decisions happen here, which is what makes accounting *lagged*
  and allows quota overrun,
- period-boundary hrtimer callbacks: the cgroup's global runtime pool is
  refilled and throttled CPUs whose debt can be covered are unthrottled,
- EEVDF slice expiries (an extra accounting point that slightly reduces
  overrun, matching the paper's CFS-vs-EEVDF comparison).

The simulation is deterministic: randomness (e.g. the phase offset between a
function invocation and the tick/period grids) is injected by callers through
``tick_phase_s`` / ``period_phase_s`` / task arrival times.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.sched.cgroup import BandwidthConfig, BandwidthController
from repro.sched.policies import PolicyParameters, SchedulingPolicy, max_burst_s, pick_next
from repro.sched.task import PhaseKind, SimTask, TaskState
from repro.sim.feedback import FeedbackChannel, PublishedRate
from repro.sim.kernel import SimulationKernel

__all__ = ["QuotaEnforcement", "SchedulerConfig", "SchedulerSim", "SimulationResult", "TaskResult"]

_EPS = 1e-12


class QuotaEnforcement(str, enum.Enum):
    """How CPU bandwidth quota exhaustion is detected.

    ``TICK`` is the stock kernel behaviour the paper measures: runtime is only
    accounted at scheduler ticks and context switches, so short tasks overrun
    their quota (overallocation).  ``EVENT`` models the paper's §4.3 proposal:
    a one-shot timer fires exactly when the running task exhausts its remaining
    runtime, throttling it immediately and eliminating the overrun (at the cost
    of extra timer programming, which is not modelled).
    """

    TICK = "tick"
    EVENT = "event"


@dataclass(frozen=True)
class SchedulerConfig:
    """Static configuration of a scheduling simulation."""

    bandwidth: BandwidthConfig
    tick_hz: int = 250
    num_cpus: int = 1
    policy: PolicyParameters = field(default_factory=PolicyParameters)
    #: Offset of the scheduler-tick grid relative to time zero.
    tick_phase_s: float = 0.0
    #: Offset of the bandwidth-period grid relative to time zero.
    period_phase_s: float = 0.0
    #: Hard simulation horizon; the run stops here even if tasks are unfinished.
    horizon_s: float = 60.0
    #: Safety valve against runaway event loops.
    max_events: int = 5_000_000
    #: Quota-exhaustion detection: lagged tick accounting (kernel default) or
    #: the event-driven enforcement the paper proposes in §4.3.
    quota_enforcement: QuotaEnforcement = QuotaEnforcement.TICK

    def __post_init__(self) -> None:
        if self.tick_hz <= 0:
            raise ValueError("tick_hz must be positive")
        if self.num_cpus <= 0:
            raise ValueError("num_cpus must be positive")
        if self.horizon_s <= 0:
            raise ValueError("horizon_s must be positive")

    @property
    def tick_interval_s(self) -> float:
        return 1.0 / self.tick_hz


@dataclass
class TaskResult:
    """Per-task outcome of a simulation run."""

    name: str
    arrival_s: float
    completion_s: Optional[float]
    cpu_consumed_s: float
    run_segments: List[Tuple[float, float]]
    throttle_segments: List[Tuple[float, float]]

    @property
    def finished(self) -> bool:
        return self.completion_s is not None

    @property
    def duration_s(self) -> float:
        """Wall-clock duration from arrival to completion (NaN when unfinished)."""
        if self.completion_s is None:
            return float("nan")
        return self.completion_s - self.arrival_s


@dataclass
class SimulationResult:
    """Outcome of one simulation: per-task results plus cgroup bandwidth stats."""

    tasks: Dict[str, TaskResult]
    bandwidth_stats: Dict[str, float]
    end_time_s: float

    def task(self, name: str) -> TaskResult:
        return self.tasks[name]

    @property
    def single(self) -> TaskResult:
        """The only task's result (convenience for single-task experiments)."""
        if len(self.tasks) != 1:
            raise ValueError(f"expected exactly one task, have {len(self.tasks)}")
        return next(iter(self.tasks.values()))


class _CpuState:
    """Mutable per-CPU simulation state."""

    __slots__ = ("cpu_id", "running", "segment_start", "last_account", "burst_start", "unaccounted")

    def __init__(self, cpu_id: int) -> None:
        self.cpu_id = cpu_id
        self.running: Optional[SimTask] = None
        self.segment_start: float = 0.0
        self.last_account: float = 0.0
        self.burst_start: float = 0.0
        self.unaccounted: float = 0.0


class SchedulerSim:
    """Simulates one cgroup's tasks under CPU bandwidth control."""

    def __init__(self, config: SchedulerConfig, tasks: Sequence[SimTask]) -> None:
        if not tasks:
            raise ValueError("at least one task is required")
        names = [t.name for t in tasks]
        if len(set(names)) != len(names):
            raise ValueError("task names must be unique")
        self.config = config
        self.tasks: List[SimTask] = list(tasks)
        self.controller = BandwidthController(config.bandwidth, num_cpus=config.num_cpus)
        self._cpus = [_CpuState(i) for i in range(config.num_cpus)]
        self._now = 0.0
        self._kernel: Optional[SimulationKernel] = None
        self._attached = False
        self._finalized = False
        # Tasks waiting to arrive, sorted by arrival time (popped from the front).
        self._pending = sorted(self.tasks, key=lambda t: t.arrival_s)
        # Per-CPU runnable queues (task affinity is fixed at arrival).
        self._runqueues: Dict[int, List[SimTask]] = {i: [] for i in range(config.num_cpus)}
        self._affinity: Dict[str, int] = {}
        # Blocked tasks and their wake times.
        self._wakeups: Dict[str, float] = {}
        # Tasks currently waiting because their CPU is throttled, with the time
        # they stopped running (for throttle segment bookkeeping).
        self._throttle_wait_since: Dict[str, float] = {}
        # Execution-feedback publication (attach(..., feedback=...)): the
        # engine accumulates delivered vs demanded CPU time per bandwidth
        # period and publishes the ratio as a piecewise-constant service-rate
        # factor the platform layer stretches busy times by.
        self._fb_rate: Optional[PublishedRate] = None
        self._fb_delivered_s = 0.0
        self._fb_demanded_s = 0.0
        self._fb_quiesced = False

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def run(self) -> SimulationResult:
        """Run the simulation to completion (all tasks done) or to the horizon.

        The engine registers itself as a polled process on the shared
        :class:`repro.sim.kernel.SimulationKernel`: the kernel owns the clock
        and asks :meth:`next_event_time` when the next tick/refill/arrival/
        completion is due, then calls :meth:`handle` to advance running tasks
        and process that instant's events.
        """
        if self._attached:
            raise RuntimeError(
                "this engine is attached to a shared kernel; drive that kernel "
                "and call finalize() instead of run()"
            )
        kernel = SimulationKernel(start_s=self._now)
        kernel.add_process(self)
        self._kernel = kernel
        events = 0
        while events < self.config.max_events:
            events += 1
            next_time = kernel.peek()
            if next_time is None or next_time > self.config.horizon_s:
                self._advance_running(min(self.config.horizon_s, self._horizon_or(next_time)))
                break
            kernel.step()
            if all(t.is_done for t in self.tasks):
                break
        else:  # pragma: no cover - safety valve
            raise RuntimeError("simulation exceeded max_events; possible event-loop bug")
        self._close_open_segments()
        return self._collect()

    def attach(
        self,
        kernel: SimulationKernel,
        feedback: Optional[FeedbackChannel] = None,
        feedback_key: str = "sched",
    ) -> "SchedulerSim":
        """Register this engine as a polled process on a *shared* kernel.

        This is how scheduler decisions (cgroup throttling, tick accounting,
        task placement) co-simulate with the platform/fleet/billing layers in
        one event loop: the shared kernel owns the clock, polls the engine
        for its next tick/refill/arrival/completion, and interleaves it with
        every other simulator's events.  Past its own ``horizon_s`` (or once
        every task is done) the engine reports nothing pending, so it never
        keeps the cluster loop alive.  After the kernel run, call
        :meth:`finalize` to close open run segments and collect results.

        With a ``feedback`` channel, the engine closes the state loop the
        shared clock alone cannot: at every bandwidth-period boundary it
        publishes the period's *effective-bandwidth factor* -- CPU time
        actually delivered over CPU time the runnable tasks demanded (time
        running plus time parked throttled) -- under ``feedback_key``.  The
        platform layer reads the combined factor at event-schedule time and
        stretches request busy times by it, so cgroup throttling becomes
        visible in end-to-end latency and in the (stretched) durations the
        cost meter bills.  Once the engine goes quiet (horizon passed or all
        tasks done) it publishes ``1.0`` so it stops slowing anyone down.
        """
        if self._attached or self._kernel is not None:
            raise RuntimeError("engine already attached to a kernel (or already run)")
        self._attached = True
        self._kernel = kernel
        if feedback is not None:
            self._fb_rate = PublishedRate()
            feedback.set_modifier(feedback_key, self._fb_rate)
        kernel.add_process(self)
        return self

    def register_metrics(self, registry) -> "SchedulerSim":
        """Expose live scheduling state as observability gauges (pure reads).

        ``sched_throttled_tasks`` is the set currently parked by bandwidth
        control, ``sched_runnable_tasks`` the run-queue population, and
        ``sched_service_rate`` the most recently published feedback factor
        (1.0 without a feedback channel) -- the telemetry sampler turns these
        into the throttle-pressure series the summary scalars hide.
        """
        registry.gauge(
            "sched_throttled_tasks", fn=lambda: float(len(self._throttle_wait_since))
        )
        registry.gauge(
            "sched_runnable_tasks",
            fn=lambda: float(sum(len(queue) for queue in self._runqueues.values())),
        )
        registry.gauge(
            "sched_service_rate",
            fn=lambda: (
                self._fb_rate.service_rate(self._now) if self._fb_rate is not None else 1.0
            ),
        )
        return self

    def finalize(self) -> SimulationResult:
        """Collect results after a shared-kernel run (idempotent).

        Mirrors the tail of :meth:`run`: unfinished tasks are advanced to the
        engine's horizon, open run/throttle segments are closed, and the
        per-task results plus bandwidth statistics are returned.
        """
        if not self._finalized:
            self._finalized = True
            if not all(t.is_done for t in self.tasks):
                self._advance_running(max(self._now, self.config.horizon_s))
            self._close_open_segments()
            self._quiesce_feedback(self._now)
        return self._collect()

    # -- repro.sim.kernel.SimProcess protocol --------------------------

    def next_event_time(self, now: float) -> Optional[float]:
        """When this engine next needs the clock (kernel poll).

        Returns ``None`` once the next event would fall strictly beyond the
        configured horizon -- exactly where the standalone :meth:`run` loop
        stops -- so a shared kernel never drives the engine past it.
        """
        if self._finalized:
            return None
        next_time = self._next_event_time()
        if next_time is None or next_time > self.config.horizon_s:
            # Quiet for good: stop throttling the platform layer too.
            self._quiesce_feedback(now)
            return None
        return next_time

    def handle(self, now: float) -> None:
        """Advance running tasks to ``now`` and process that instant's events."""
        self._advance_running(now)
        self._handle_events()
        self._dispatch()

    # ------------------------------------------------------------------
    # Event-time computation
    # ------------------------------------------------------------------

    def _horizon_or(self, candidate: Optional[float]) -> float:
        if candidate is None:
            return self.config.horizon_s
        return min(candidate, self.config.horizon_s)

    def _next_grid_point(self, phase: float, interval: float) -> float:
        """The first grid point strictly after the current time."""
        k = math.floor((self._now - phase) / interval + 1e-9) + 1
        return phase + k * interval

    def _next_event_time(self) -> Optional[float]:
        candidates: List[float] = []
        if self._pending:
            candidates.append(self._pending[0].arrival_s)
        if self._wakeups:
            candidates.append(min(self._wakeups.values()))
        any_running = any(cpu.running is not None for cpu in self._cpus)
        if any_running:
            candidates.append(self._next_grid_point(self.config.tick_phase_s, self.config.tick_interval_s))
        if self.config.bandwidth.enabled and (
            any_running or any(self.controller.is_throttled(c.cpu_id) for c in self._cpus)
        ):
            candidates.append(
                self._next_grid_point(self.config.period_phase_s, self.config.bandwidth.period_s)
            )
        burst_limit = max_burst_s(self.config.policy)
        for cpu in self._cpus:
            if cpu.running is None:
                continue
            candidates.append(self._now + cpu.running.phase_remaining_s)
            if burst_limit is not None:
                candidates.append(cpu.burst_start + burst_limit)
            if (
                self.config.quota_enforcement is QuotaEnforcement.EVENT
                and self.config.bandwidth.enabled
            ):
                budget = self._remaining_budget(cpu)
                if budget is not None:
                    candidates.append(self._now + max(budget, 0.0))
        if not candidates:
            return None
        return min(candidates)

    def _remaining_budget(self, cpu: _CpuState) -> Optional[float]:
        """Runtime left before this CPU's cgroup budget is exhausted (event enforcement)."""
        pool = self.controller.local[cpu.cpu_id]
        budget = pool.runtime_remaining_s + self.controller.global_runtime_s - cpu.unaccounted
        if budget == float("inf"):
            return None
        return budget

    # ------------------------------------------------------------------
    # Time advancement
    # ------------------------------------------------------------------

    def _advance_running(self, new_time: float) -> None:
        delta = new_time - self._now
        if delta < -_EPS:
            raise RuntimeError(f"time went backwards: {self._now} -> {new_time}")
        delta = max(delta, 0.0)
        for cpu in self._cpus:
            task = cpu.running
            if task is None:
                continue
            consumed = min(delta, task.phase_remaining_s)
            task.phase_remaining_s -= consumed
            task.cpu_consumed_s += consumed
            task.vruntime += consumed / task.weight
            cpu.unaccounted += consumed
            if self._fb_rate is not None:
                # A running task both demanded and received `consumed` (it
                # stops demanding once its compute phase ends mid-interval).
                self._fb_delivered_s += consumed
                self._fb_demanded_s += consumed
        if self._fb_rate is not None and self._throttle_wait_since:
            # Throttled tasks demanded the whole interval but received none.
            self._fb_demanded_s += delta * len(self._throttle_wait_since)
        self._now = new_time

    # ------------------------------------------------------------------
    # Event handling
    # ------------------------------------------------------------------

    def _on_grid(self, phase: float, interval: float) -> bool:
        offset = (self._now - phase) / interval
        return abs(offset - round(offset)) < 1e-7

    def _handle_events(self) -> None:
        now = self._now
        # 1. Arrivals.
        while self._pending and self._pending[0].arrival_s <= now + _EPS:
            task = self._pending.pop(0)
            task.state = TaskState.RUNNABLE
            cpu_id = self._least_loaded_cpu()
            self._affinity[task.name] = cpu_id
            self._runqueues[cpu_id].append(task)

        # 2. IO wake-ups.
        for name, wake_time in list(self._wakeups.items()):
            if wake_time <= now + _EPS:
                del self._wakeups[name]
                task = self._task_by_name(name)
                task.advance_phase()
                self._after_phase_transition(task)

        # 3. Compute-phase completions (account consumed runtime at the switch).
        for cpu in self._cpus:
            task = cpu.running
            if task is None or task.phase_remaining_s > _EPS:
                continue
            self._account_cpu(cpu)
            self._stop_running(cpu, record_throttle_wait=False)
            task.advance_phase()
            self._after_phase_transition(task)

        # 4. Period refill (before the tick so a coinciding tick sees fresh quota).
        if self.config.bandwidth.enabled and self._on_grid(
            self.config.period_phase_s, self.config.bandwidth.period_s
        ):
            self._publish_feedback(now)
            unthrottled = self.controller.refill(now)
            for cpu_id in unthrottled:
                for task in self._runqueues[cpu_id]:
                    if task.name in self._throttle_wait_since:
                        started = self._throttle_wait_since.pop(task.name)
                        task.throttle_segments.append((started, now - started))
                        task.state = TaskState.RUNNABLE

        # 5. Scheduler tick: accounting, throttling, and preemption points.
        if self._on_grid(self.config.tick_phase_s, self.config.tick_interval_s):
            for cpu in self._cpus:
                if cpu.running is not None:
                    self._account_and_maybe_throttle(cpu)
            self._preempt_if_needed()

        # 5b. Event-driven quota enforcement (§4.3 proposal): throttle a running
        # task the instant its remaining budget hits zero rather than waiting
        # for the next tick.
        if (
            self.config.quota_enforcement is QuotaEnforcement.EVENT
            and self.config.bandwidth.enabled
        ):
            for cpu in self._cpus:
                if cpu.running is None:
                    continue
                budget = self._remaining_budget(cpu)
                if budget is not None and budget <= 1e-9:
                    self._account_cpu(cpu)
                    if self.controller.throttle_if_exhausted(cpu.cpu_id, self._now) and cpu.running is not None:
                        task = cpu.running
                        self._stop_running(cpu, record_throttle_wait=True)
                        task.state = TaskState.THROTTLED

        # 6. EEVDF slice expiry: an extra accounting point for the running task.
        burst_limit = max_burst_s(self.config.policy)
        if burst_limit is not None:
            for cpu in self._cpus:
                task = cpu.running
                if task is None:
                    continue
                if now - cpu.burst_start >= burst_limit - 1e-9:
                    self._account_and_maybe_throttle(cpu)
                    if cpu.running is not None:
                        cpu.burst_start = now
            self._preempt_if_needed()

    def _after_phase_transition(self, task: SimTask) -> None:
        """Route a task to the right state after finishing a phase."""
        phase = task.current_phase
        if phase is None:
            task.state = TaskState.DONE
            task.completion_time_s = self._now
            cpu_id = self._affinity.get(task.name)
            if cpu_id is not None and task in self._runqueues[cpu_id]:
                self._runqueues[cpu_id].remove(task)
            return
        if phase.kind is PhaseKind.IO:
            task.state = TaskState.BLOCKED
            self._wakeups[task.name] = self._now + phase.duration_s
            cpu_id = self._affinity[task.name]
            if task in self._runqueues[cpu_id]:
                self._runqueues[cpu_id].remove(task)
            return
        # Compute phase: back on the runqueue.
        task.state = TaskState.RUNNABLE
        cpu_id = self._affinity[task.name]
        if task not in self._runqueues[cpu_id]:
            self._runqueues[cpu_id].append(task)

    # ------------------------------------------------------------------
    # Execution-feedback publication
    # ------------------------------------------------------------------

    def _publish_feedback(self, now: float) -> None:
        """Close the current accounting window and publish its bandwidth factor.

        Called at each period boundary: the factor is delivered CPU time over
        demanded CPU time since the previous boundary.  An idle window (no
        demand at all) publishes ``1.0`` -- nothing was slowed down.
        """
        if self._fb_rate is None:
            return
        if self._fb_demanded_s > _EPS:
            factor = min(self._fb_delivered_s / self._fb_demanded_s, 1.0)
        else:
            factor = 1.0
        self._fb_rate.publish(now, factor)
        self._fb_delivered_s = 0.0
        self._fb_demanded_s = 0.0

    def _quiesce_feedback(self, now: float) -> None:
        """Publish full speed once the engine has nothing left to simulate."""
        if self._fb_rate is not None and not self._fb_quiesced:
            self._fb_quiesced = True
            self._fb_rate.publish(now, 1.0)

    # ------------------------------------------------------------------
    # Accounting, throttling, and dispatch
    # ------------------------------------------------------------------

    def _account_cpu(self, cpu: _CpuState) -> bool:
        """Charge unaccounted runtime; returns True when the CPU got throttled."""
        if cpu.unaccounted <= 0:
            return self.controller.is_throttled(cpu.cpu_id)
        throttled = self.controller.account(cpu.cpu_id, cpu.unaccounted, self._now)
        cpu.unaccounted = 0.0
        cpu.last_account = self._now
        return throttled

    def _account_and_maybe_throttle(self, cpu: _CpuState) -> None:
        throttled = self._account_cpu(cpu)
        if throttled and cpu.running is not None:
            task = cpu.running
            self._stop_running(cpu, record_throttle_wait=True)
            task.state = TaskState.THROTTLED

    def _stop_running(self, cpu: _CpuState, record_throttle_wait: bool) -> None:
        task = cpu.running
        if task is None:
            return
        if self._now > cpu.segment_start + _EPS:
            task.run_segments.append((cpu.segment_start, self._now))
        if record_throttle_wait:
            self._throttle_wait_since[task.name] = self._now
        cpu.running = None
        cpu.unaccounted = 0.0

    def _preempt_if_needed(self) -> None:
        """At a tick, let a waiting task with a smaller scheduling key take the CPU."""
        for cpu in self._cpus:
            if self.controller.is_throttled(cpu.cpu_id):
                continue
            waiting = [
                t
                for t in self._runqueues[cpu.cpu_id]
                if t.state is TaskState.RUNNABLE and t is not cpu.running
            ]
            if not waiting:
                continue
            best_waiting = pick_next(waiting, self.config.policy, self._now)
            current = cpu.running
            if current is None:
                continue
            candidate = pick_next([current, best_waiting], self.config.policy, self._now)
            if candidate is not current:
                self._account_cpu(cpu)
                self._stop_running(cpu, record_throttle_wait=False)
                current.state = TaskState.RUNNABLE

    def _dispatch(self) -> None:
        """Put runnable tasks on idle, unthrottled CPUs."""
        for cpu in self._cpus:
            if cpu.running is not None or self.controller.is_throttled(cpu.cpu_id):
                continue
            runnable = [t for t in self._runqueues[cpu.cpu_id] if t.state is TaskState.RUNNABLE]
            chosen = pick_next(runnable, self.config.policy, self._now)
            if chosen is None:
                continue
            chosen.state = TaskState.RUNNING
            cpu.running = chosen
            cpu.segment_start = self._now
            cpu.burst_start = self._now
            cpu.last_account = self._now
            cpu.unaccounted = 0.0
            if chosen.name in self._throttle_wait_since:
                started = self._throttle_wait_since.pop(chosen.name)
                chosen.throttle_segments.append((started, self._now - started))

    # ------------------------------------------------------------------
    # Helpers and result collection
    # ------------------------------------------------------------------

    def _least_loaded_cpu(self) -> int:
        return min(self._runqueues, key=lambda cpu_id: len(self._runqueues[cpu_id]))

    def _task_by_name(self, name: str) -> SimTask:
        for task in self.tasks:
            if task.name == name:
                return task
        raise KeyError(name)

    def _close_open_segments(self) -> None:
        for cpu in self._cpus:
            if cpu.running is not None and self._now > cpu.segment_start + _EPS:
                cpu.running.run_segments.append((cpu.segment_start, self._now))
                cpu.running = None
        for name, started in list(self._throttle_wait_since.items()):
            task = self._task_by_name(name)
            if self._now > started + _EPS:
                task.throttle_segments.append((started, self._now - started))
            del self._throttle_wait_since[name]

    def _collect(self) -> SimulationResult:
        results = {
            task.name: TaskResult(
                name=task.name,
                arrival_s=task.arrival_s,
                completion_s=task.completion_time_s,
                cpu_consumed_s=task.cpu_consumed_s,
                run_segments=list(task.run_segments),
                throttle_segments=list(task.throttle_segments),
            )
            for task in self.tasks
        }
        return SimulationResult(
            tasks=results,
            bandwidth_stats=self.controller.stats(),
            end_time_s=self._now,
        )
