"""Closed-form duration models for CPU-bound tasks under bandwidth control.

Implements the paper's Equation (2):

.. math::

    d = \\begin{cases}
        \\lfloor T/Q \\rfloor P + (T \\bmod Q) & \\text{if } T \\bmod Q \\neq 0 \\\\
        (\\lfloor T/Q \\rfloor - 1) P + Q       & \\text{otherwise}
    \\end{cases}

where ``T`` is the task's required CPU time, ``P`` the bandwidth-control
period and ``Q`` the quota per period.  The model assumes exact (lag-free)
runtime accounting; the simulator adds the tick-granularity effects on top.
Figure 11 plots this model for the Huawei-trace mean CPU time of 51.8 ms over
periods from 5 ms to 100 ms.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence

__all__ = [
    "theoretical_duration",
    "expected_duration_reciprocal",
    "theoretical_duration_series",
    "quantization_jump_allocations",
]


def theoretical_duration(cpu_time_s: float, period_s: float, quota_s: float) -> float:
    """Equation (2): wall-clock duration of a CPU-bound task under ideal accounting."""
    if cpu_time_s < 0:
        raise ValueError("cpu_time_s must be >= 0")
    if period_s <= 0 or quota_s <= 0:
        raise ValueError("period_s and quota_s must be positive")
    if cpu_time_s == 0:
        return 0.0
    if quota_s >= period_s:
        # No effective limit below one full CPU: the task runs undisturbed.
        return cpu_time_s
    full_periods = math.floor(cpu_time_s / quota_s)
    remainder = cpu_time_s - full_periods * quota_s
    if remainder > 1e-12:
        return full_periods * period_s + remainder
    return (full_periods - 1) * period_s + quota_s


def expected_duration_reciprocal(cpu_time_s: float, vcpu_fraction: float) -> float:
    """The naive expectation: duration scales as 1/fraction (the paper's dashed line)."""
    if vcpu_fraction <= 0:
        raise ValueError("vcpu_fraction must be positive")
    return cpu_time_s / min(vcpu_fraction, 1.0)


def theoretical_duration_series(
    cpu_time_s: float,
    period_s: float,
    vcpu_fractions: Sequence[float],
) -> List[Dict[str, float]]:
    """Figure 11's series: duration versus fractional vCPU allocation for one period."""
    rows: List[Dict[str, float]] = []
    for fraction in vcpu_fractions:
        if fraction <= 0:
            raise ValueError("vcpu fractions must be positive")
        quota = fraction * period_s
        rows.append(
            {
                "vcpu_fraction": float(fraction),
                "period_ms": period_s * 1e3,
                "duration_ms": theoretical_duration(cpu_time_s, period_s, quota) * 1e3,
                "ideal_duration_ms": expected_duration_reciprocal(cpu_time_s, fraction) * 1e3,
            }
        )
    return rows


def quantization_jump_allocations(cpu_time_s: float, period_s: float, max_jumps: int = 10) -> List[float]:
    """The vCPU allocations where Equation (2) predicts duration jumps.

    Jumps occur where the number of periods needed changes, i.e. at quotas
    ``Q = T / n``; the corresponding allocations form the scaled harmonic
    sequence the paper observes (e.g. ~1400 MB x {1, 1/2, 1/3, ...} on AWS).
    Only allocations at or below one full vCPU are returned.
    """
    if max_jumps <= 0:
        raise ValueError("max_jumps must be positive")
    allocations: List[float] = []
    for n in range(1, max_jumps + 1):
        fraction = cpu_time_s / (n * period_s)
        if fraction <= 1.0:
            allocations.append(fraction)
    return allocations
