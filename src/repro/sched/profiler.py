"""User-space scheduler profiling (the paper's Algorithm 1).

The paper profiles cloud schedulers from inside the sandbox: a spin loop reads
the monotonic clock and records any jump larger than 500 us as a throttle
event (the default minimal preemption granularity for CPU-bound tasks is
750 us, so jumps of this size indicate involuntary descheduling).  The
profiler here applies exactly that detection rule to the run timeline produced
by the simulator (or, via :func:`profile_live`, to a real spin loop on the
host, which is how the paper's in-house VM runs were collected).

From the detected events the profile derives the three distributions of the
paper's Figure 12: throttle intervals, throttle durations, and the CPU time
obtained between consecutive throttles.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.sched.engine import TaskResult

__all__ = [
    "ThrottleEvent",
    "ThrottleProfile",
    "ThrottleProfileSet",
    "profile_task_result",
    "profile_live",
]

#: Detection threshold of Algorithm 1 (500 us monotonic-clock jump).
DETECTION_THRESHOLD_S = 500e-6


@dataclass(frozen=True)
class ThrottleEvent:
    """One detected throttle: when it was detected and how long the clock jumped."""

    detected_at_s: float
    duration_s: float


@dataclass
class ThrottleProfile:
    """The Algorithm-1 output for one profiled execution."""

    events: List[ThrottleEvent] = field(default_factory=list)
    #: Total wall-clock span profiled.
    span_s: float = 0.0
    #: Total CPU time obtained during the span.
    cpu_obtained_s: float = 0.0

    @property
    def num_throttles(self) -> int:
        return len(self.events)

    def throttle_intervals_s(self) -> List[float]:
        """Time between consecutive throttle detections (Figure 12, left column)."""
        detections = [e.detected_at_s for e in self.events]
        return [b - a for a, b in zip(detections, detections[1:])]

    def throttle_durations_s(self) -> List[float]:
        """Durations of the detected clock jumps (Figure 12, right column)."""
        return [e.duration_s for e in self.events]

    def obtained_cpu_times_s(self) -> List[float]:
        """CPU time obtained between consecutive throttles (Figure 12, middle column).

        Computed as the gap between detections minus the throttled portion,
        i.e. the amount of runtime the task managed to consume before being
        throttled again.
        """
        values: List[float] = []
        for previous, current in zip(self.events, self.events[1:]):
            running = (current.detected_at_s - previous.detected_at_s) - current.duration_s
            values.append(max(running, 0.0))
        return values

    def summary(self) -> Dict[str, float]:
        intervals = self.throttle_intervals_s()
        durations = self.throttle_durations_s()
        obtained = self.obtained_cpu_times_s()
        def _mean(xs: Sequence[float]) -> float:
            return sum(xs) / len(xs) if xs else float("nan")
        return {
            "num_throttles": float(self.num_throttles),
            "span_s": self.span_s,
            "cpu_obtained_s": self.cpu_obtained_s,
            "mean_throttle_interval_s": _mean(intervals),
            "mean_throttle_duration_s": _mean(durations),
            "mean_obtained_cpu_s": _mean(obtained),
            "cpu_share": (self.cpu_obtained_s / self.span_s) if self.span_s > 0 else float("nan"),
        }


@dataclass
class ThrottleProfileSet:
    """Aggregated Algorithm-1 profiles from repeated invocations of one configuration.

    The paper profiles each configuration with hundreds of invocations and
    studies the pooled distributions.  Intervals and obtained-CPU values are
    computed *within* each invocation and then concatenated, so no spurious
    cross-invocation gaps appear in the distributions.
    """

    profiles: List[ThrottleProfile] = field(default_factory=list)

    def add(self, profile: ThrottleProfile) -> None:
        self.profiles.append(profile)

    @property
    def num_throttles(self) -> int:
        return sum(p.num_throttles for p in self.profiles)

    @property
    def span_s(self) -> float:
        return sum(p.span_s for p in self.profiles)

    @property
    def cpu_obtained_s(self) -> float:
        return sum(p.cpu_obtained_s for p in self.profiles)

    def throttle_intervals_s(self) -> List[float]:
        values: List[float] = []
        for profile in self.profiles:
            values.extend(profile.throttle_intervals_s())
        return values

    def throttle_durations_s(self) -> List[float]:
        values: List[float] = []
        for profile in self.profiles:
            values.extend(profile.throttle_durations_s())
        return values

    def obtained_cpu_times_s(self) -> List[float]:
        values: List[float] = []
        for profile in self.profiles:
            values.extend(profile.obtained_cpu_times_s())
        return values

    def obtained_cpu_diffs_s(self) -> List[float]:
        """Absolute differences between consecutive obtained-CPU values within each invocation.

        Runtime accounting happens at scheduler ticks, so these differences are
        (noisy) integer multiples of the tick interval -- the signal the
        Table 3 inference uses to recover ``CONFIG_HZ``.
        """
        diffs: List[float] = []
        for profile in self.profiles:
            obtained = profile.obtained_cpu_times_s()
            for previous, current in zip(obtained, obtained[1:]):
                diffs.append(abs(current - previous))
        return diffs

    def summary(self) -> Dict[str, float]:
        intervals = self.throttle_intervals_s()
        durations = self.throttle_durations_s()
        obtained = self.obtained_cpu_times_s()

        def _mean(xs: Sequence[float]) -> float:
            return sum(xs) / len(xs) if xs else float("nan")

        return {
            "num_invocations": float(len(self.profiles)),
            "num_throttles": float(self.num_throttles),
            "span_s": self.span_s,
            "cpu_obtained_s": self.cpu_obtained_s,
            "mean_throttle_interval_s": _mean(intervals),
            "mean_throttle_duration_s": _mean(durations),
            "mean_obtained_cpu_s": _mean(obtained),
            "cpu_share": (self.cpu_obtained_s / self.span_s) if self.span_s > 0 else float("nan"),
        }


def profile_task_result(
    result: TaskResult, threshold_s: float = DETECTION_THRESHOLD_S
) -> ThrottleProfile:
    """Apply Algorithm 1's detection rule to a simulated task's run timeline.

    While the task is running, the spin loop observes monotonic time advancing
    continuously; whenever the task is off-CPU for more than ``threshold_s``
    the next loop iteration observes a clock jump and records it.
    """
    segments: List[Tuple[float, float]] = sorted(result.run_segments)
    profile = ThrottleProfile()
    if not segments:
        return profile
    profile.span_s = segments[-1][1] - segments[0][0]
    profile.cpu_obtained_s = sum(end - start for start, end in segments)
    for (prev_start, prev_end), (start, end) in zip(segments, segments[1:]):
        gap = start - prev_end
        if gap >= threshold_s:
            profile.events.append(ThrottleEvent(detected_at_s=start, duration_s=gap))
    return profile


def profile_live(exec_duration_s: float, threshold_s: float = DETECTION_THRESHOLD_S) -> ThrottleProfile:
    """Run Algorithm 1 for real on the current host.

    This is the literal pseudocode of the paper: spin on the monotonic clock
    for ``exec_duration_s`` and record every jump above ``threshold_s``.  On an
    unconstrained host this typically detects only occasional preemptions; run
    it inside a CPU-limited cgroup/container to observe bandwidth throttling.
    """
    if exec_duration_s <= 0:
        raise ValueError("exec_duration_s must be positive")
    start = time.monotonic()
    last_checkpoint = start
    events: List[ThrottleEvent] = []
    while True:
        now = time.monotonic()
        if now - last_checkpoint >= threshold_s:
            events.append(ThrottleEvent(detected_at_s=now - start, duration_s=now - last_checkpoint))
        last_checkpoint = now
        if now - start >= exec_duration_s:
            break
    span = time.monotonic() - start
    throttled = sum(e.duration_s for e in events)
    return ThrottleProfile(events=events, span_s=span, cpu_obtained_s=max(span - throttled, 0.0))
