"""Scheduling pick policies: CFS (vruntime order) and EEVDF (virtual deadlines).

For the paper's experiments the policy mostly matters through two knobs:

- how tasks are ordered when several are runnable on the same CPU (weighted
  vruntime for CFS, earliest eligible virtual deadline for EEVDF), and
- the maximum uninterrupted run burst before the scheduler re-evaluates.  CFS
  re-evaluates at scheduler ticks; EEVDF additionally bounds each burst by the
  task's allotted slice (the virtual-deadline mechanism), which is why the
  paper observes slightly smaller quota overruns under EEVDF at the same timer
  frequency.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.sched.task import SimTask

__all__ = ["SchedulingPolicy", "PolicyParameters", "pick_next", "max_burst_s"]

#: Kernel default minimal preemption granularity for CPU-bound tasks (750 us),
#: referenced by the paper's Algorithm 1 threshold discussion.
MIN_PREEMPTION_GRANULARITY_S = 0.00075

#: EEVDF base slice (sysctl_sched_base_slice) used to bound run bursts.
EEVDF_BASE_SLICE_S = 0.003


class SchedulingPolicy(str, enum.Enum):
    """The two kernel schedulers the paper studies."""

    CFS = "cfs"
    EEVDF = "eevdf"


@dataclass(frozen=True)
class PolicyParameters:
    """Tunable policy parameters (exposed for ablation benchmarks)."""

    policy: SchedulingPolicy = SchedulingPolicy.CFS
    eevdf_base_slice_s: float = EEVDF_BASE_SLICE_S

    def __post_init__(self) -> None:
        if self.eevdf_base_slice_s <= 0:
            raise ValueError("eevdf_base_slice_s must be positive")


def pick_next(runnable: Sequence[SimTask], params: PolicyParameters, now_s: float) -> Optional[SimTask]:
    """Pick the next task to run among runnable tasks on one CPU.

    CFS picks the task with the smallest weighted vruntime.  EEVDF picks the
    eligible task with the earliest virtual deadline; with equal weights and
    the simulator's full-decay eligibility this reduces to the smallest
    ``vruntime + slice/weight``, which preserves EEVDF's preference for tasks
    with shorter slices.
    """
    if not runnable:
        return None
    if params.policy is SchedulingPolicy.CFS:
        return min(runnable, key=lambda t: (t.vruntime, t.name))
    # EEVDF: virtual deadline = vruntime + slice / weight.
    def deadline(task: SimTask) -> float:
        return task.vruntime + params.eevdf_base_slice_s / task.weight

    return min(runnable, key=lambda t: (deadline(t), t.name))


def max_burst_s(params: PolicyParameters) -> Optional[float]:
    """Maximum uninterrupted run burst the policy allows between re-evaluations.

    ``None`` means the burst is bounded only by scheduler ticks and bandwidth
    events (the CFS behaviour).  EEVDF bounds bursts by the base slice, which
    adds accounting points and slightly reduces quota overrun.
    """
    if params.policy is SchedulingPolicy.EEVDF:
        return params.eevdf_base_slice_s
    return None
