"""Table 3: inferring provider scheduling parameters from user-space profiles."""

from repro.analysis.throttle import table3_inference

from .conftest import emit, run_once


def test_bench_table3_scheduling_parameter_inference(benchmark):
    rows = run_once(benchmark, table3_inference, exec_duration_s=4.0, invocations=8)
    emit("Table 3 -- inferred bandwidth period and timer frequency per provider", rows)

    # Shape: the inference recovers exactly the configured (paper-reported)
    # parameters for all three providers: AWS 20 ms / 250 Hz, GCP 100 ms /
    # 1000 Hz, IBM 10 ms / 250 Hz -- demonstrating that providers do not share
    # a unanimous scheduling configuration.
    for row in rows:
        assert row["inferred_period_ms"] == row["paper_period_ms"]
        assert row["inferred_tick_hz"] == row["paper_tick_hz"]
    periods = {row["provider"]: row["inferred_period_ms"] for row in rows}
    assert len(set(periods.values())) == 3
