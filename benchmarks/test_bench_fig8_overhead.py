"""Figure 8: serving-architecture overhead measured with a minimal function."""

from repro.analysis.overhead import figure8_overhead

from .conftest import emit, run_once


def test_bench_fig8_serving_architecture_overhead(benchmark):
    rows = run_once(benchmark, figure8_overhead, num_requests=400)
    emit("Figure 8 -- minimal-function execution duration per serving architecture", rows)
    by_config = {row["configuration"]: row for row in rows}

    # Shape (I7): HTTP-server platforms have the highest overhead (several ms,
    # worse at small CPU allocations), API polling sits around ~1.2 ms and is
    # stable, and code/binary execution is near zero.
    assert by_config["gcp_0.08vcpu"]["mean_duration_ms"] > by_config["gcp_1vcpu"]["mean_duration_ms"]
    assert by_config["gcp_1vcpu"]["mean_duration_ms"] > by_config["aws_1769mb"]["mean_duration_ms"]
    assert by_config["azure_consumption"]["mean_duration_ms"] > by_config["aws_1769mb"]["mean_duration_ms"]
    assert by_config["aws_1769mb"]["mean_duration_ms"] < 2.0
    assert by_config["cloudflare_workers"]["mean_duration_ms"] < 0.2
    # The AWS overhead is roughly stable across memory sizes (within a few ms).
    assert abs(by_config["aws_128mb"]["mean_duration_ms"] - by_config["aws_1769mb"]["mean_duration_ms"]) < 3.0
