"""Figure 1 and the §1 comparison: per-unit resource prices across platforms."""

from repro.billing.pricing import figure1_series, price_comparison_vs_vm

from .conftest import emit, run_once


def test_bench_fig1_unit_prices(benchmark):
    rows = run_once(benchmark, figure1_series)
    emit("Figure 1 -- vCPU and memory unit prices per platform", rows)
    # Shape (I1): per-unit prices are similar across providers -- within a
    # small factor, not orders of magnitude apart.
    cpu_prices = [r["cpu_per_vcpu_second"] for r in rows if r["cpu_per_vcpu_second"] > 0]
    assert max(cpu_prices) / min(cpu_prices) < 4.0
    memory_prices = [r["memory_per_gb_second"] for r in rows if r["memory_per_gb_second"] > 0]
    assert max(memory_prices) / min(memory_prices) < 5.0


def test_bench_section1_serverless_vs_vm(benchmark):
    comparison = run_once(benchmark, price_comparison_vs_vm)
    emit("§1 -- Lambda vs EC2 vs Fargate per-second price", [comparison])
    # Paper: EC2 at 41.1% and Fargate at 47.8% of the Lambda price; i.e.
    # serverless costs ~2x the same hardware rented as VM/container.
    assert 0.35 <= comparison["ec2_fraction_of_lambda"] <= 0.48
    assert 0.42 <= comparison["fargate_fraction_of_lambda"] <= 0.55
    assert comparison["ec2_fraction_of_lambda"] < comparison["fargate_fraction_of_lambda"]
