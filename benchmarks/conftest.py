"""Shared fixtures and helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper: it runs the
corresponding analysis (timed once through pytest-benchmark), prints the same
rows/series the paper reports, and asserts the qualitative shape (orderings,
crossovers, approximate factors) that the reproduction is expected to
preserve.  Run with::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

import pytest

from repro.core.report import render_table
from repro.traces.generator import TraceGenerator, TraceGeneratorConfig


@pytest.fixture(scope="session")
def bench_trace():
    """The synthetic Huawei-like trace used by the §2 benchmarks (Figures 2-5)."""
    config = TraceGeneratorConfig(num_requests=30_000, num_functions=200, seed=2026)
    return TraceGenerator(config).generate()


def emit(title: str, rows, columns=None) -> None:
    """Print a result table (visible with ``pytest -s``) for EXPERIMENTS.md."""
    print()
    print(render_table(list(rows), columns=columns, title=title))


def run_once(benchmark, func, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing.

    The experiments are macro-benchmarks (whole-figure regenerations), so a
    single round keeps the harness runtime proportional to the paper's
    experiment count rather than pytest-benchmark's statistical defaults.
    """
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1, warmup_rounds=0)
