"""Figure 5: invocation-fee equivalents and rounded-up billable time / memory."""

from repro.analysis.rounding import figure5_invocation_fee_equivalents, figure5_rounding_summary

from .conftest import emit, run_once


def test_bench_fig5_invocation_fee_equivalents(benchmark):
    rows = run_once(
        benchmark, figure5_invocation_fee_equivalents, vcpu_sweep=(0.072, 0.25, 0.5, 0.75, 1.0)
    )
    emit("Figure 5 (left) -- invocation fee as equivalent billable wall-clock time", rows)
    aws = {row["vcpu_allocation"]: row["fee_equivalent_ms"] for row in rows if row["platform"] == "aws_lambda"}
    # Paper: ~96 ms at the default 128 MB configuration, shrinking with allocation.
    assert abs(aws[0.072] - 96.0) < 5.0
    assert aws[0.072] > aws[0.25] > aws[1.0]
    # Platforms without a request fee sit at zero.
    ibm = [row for row in rows if row["platform"] == "ibm_code_engine"]
    assert all(row["fee_equivalent_ms"] == 0.0 for row in ibm)


def test_bench_fig5_rounding(benchmark, bench_trace):
    rows = run_once(benchmark, figure5_rounding_summary, bench_trace)
    emit("Figure 5 (right) -- rounded-up billable time and memory", rows)
    values = {row["metric"]: row["measured"] for row in rows}
    # Shape: 100 ms granularity inflates the mean billable time above the raw
    # mean execution time; the rounded values stay on the same order of
    # magnitude as the execution itself (paper: 77.12 ms and 61.35 ms vs a
    # 58.19 ms mean execution).
    assert values["rounded_time_100ms_gran_ms"] > values["mean_execution_ms"]
    assert values["rounded_time_1ms_gran_100ms_cutoff_ms"] > 0.9 * values["mean_execution_ms"]
    assert values["rounded_time_100ms_gran_ms"] < 5 * values["mean_execution_ms"]
    assert values["rounded_memory_128mb_gran_gb_s"] > values["mean_billable_memory_gb_s"] * 0.5
