"""Figure 6: execution duration under varying request rates (concurrency model cost)."""

from repro.analysis.concurrency import (
    figure6_burst_sweep,
    figure6_long_run_summary,
    figure6_long_run_timeline,
    figure6_slowdown_summary,
)

from .conftest import emit, run_once


def test_bench_fig6_burst_sweep(benchmark):
    rows = run_once(
        benchmark,
        figure6_burst_sweep,
        rps_sweep=(1, 2, 4, 6, 10, 15, 20, 30),
        burst_duration_s=120.0,
    )
    emit("Figure 6 (left) -- execution duration vs request rate", rows)
    summary = {row["platform"]: row for row in figure6_slowdown_summary(rows)}
    emit("Figure 6 (left) -- max slowdown per platform", summary.values())

    # Shape: the single-concurrency platform (AWS-like) is flat across request
    # rates, while the multi-concurrency platform (GCP-like) slows down by a
    # large factor once the rate exceeds a few RPS (paper: up to 9.65x).
    assert summary["aws"]["max_slowdown"] < 1.15
    assert summary["gcp"]["max_slowdown"] > 3.0
    gcp_rows = sorted((r for r in rows if r["platform"] == "gcp"), key=lambda r: r["rps"])
    low_rate_mean = gcp_rows[0]["mean_duration_ms"]
    high_rate_mean = gcp_rows[-1]["mean_duration_ms"]
    assert high_rate_mean > 2.0 * low_rate_mean
    # The slowdown only materialises above a handful of RPS (crossover point).
    assert gcp_rows[1]["mean_duration_ms"] < 2.0 * low_rate_mean


def test_bench_fig6_long_run_scaling_lag(benchmark):
    timeline = run_once(
        benchmark, figure6_long_run_timeline, rps=15.0, duration_s=300.0, bucket_s=20.0, seed=2
    )
    emit("Figure 6 (right) -- duration and instance count over time at 15 RPS", timeline)
    summary = figure6_long_run_summary(timeline, tail_start_s=120.0)
    emit("Figure 6 (right) -- scaling-lag summary", [summary])

    # Shape: scaling takes tens of seconds to begin (metric aggregation lag),
    # the early buckets are much slower than the steady state, and the
    # instance count grows well beyond one.
    assert summary["max_instances"] >= 4
    assert summary["peak_mean_duration_s"] > 2.0 * summary["steady_state_mean_duration_s"]
    assert timeline[0]["mean_duration_s"] > summary["steady_state_mean_duration_s"]
