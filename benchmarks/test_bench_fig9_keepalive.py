"""Figure 9 and Table 2: keep-alive durations and idle-resource behaviour."""

from repro.analysis.keepalive import (
    figure9_cold_start_probabilities,
    figure9_probe_simulation,
    table2_keepalive_behavior,
)

from .conftest import emit, run_once


def test_bench_fig9_cold_start_probability_curves(benchmark):
    rows = run_once(
        benchmark,
        figure9_cold_start_probabilities,
        idle_times_s=tuple(sorted(set(float(x) for x in range(60, 1021, 60)) | {330.0})),
    )
    emit("Figure 9 -- cold-start probability vs idle time", rows)
    curves = {}
    for row in rows:
        curves.setdefault(row["platform"], {})[row["idle_time_s"]] = row["cold_start_probability"]

    # Shape: AWS goes cold between 300 s and 360 s; Azure is opportunistic with
    # an earlier onset (from ~120 s); GCP keeps instances the longest (~900 s).
    aws, azure, gcp = curves["aws_lambda_like"], curves["azure_consumption_like"], curves["gcp_run_like"]
    assert aws[240.0] == 0.0 and aws[420.0] == 1.0
    assert 0.0 < aws[330.0] < 1.0
    assert azure[240.0] > 0.0  # opportunistic: may already be cold
    assert gcp[600.0] == 0.0 and gcp[960.0] == 1.0
    # Ordering of keep-alive horizons: Azure onset <= AWS <= GCP.
    assert azure[180.0] >= aws[180.0]
    assert gcp[420.0] <= aws[420.0]


def test_bench_fig9_probe_measurement(benchmark):
    rows = run_once(
        benchmark,
        figure9_probe_simulation,
        platform_name="aws_lambda_like",
        idle_times_s=(120.0, 330.0, 500.0),
        probes_per_idle_time=20,
    )
    emit("Figure 9 -- measured cold-start probability (AWS-like probes)", rows)
    by_idle = {row["idle_time_s"]: row for row in rows}
    assert by_idle[120.0]["measured_cold_start_probability"] < 0.2
    assert by_idle[500.0]["measured_cold_start_probability"] > 0.8


def test_bench_table2_keepalive_behaviour(benchmark):
    rows = run_once(benchmark, table2_keepalive_behavior)
    emit("Table 2 -- resource allocation behaviour during keep-alive", rows)
    by_platform = {row["platform"]: row for row in rows}
    assert by_platform["aws_lambda_like"]["resource_behavior"] == "freeze_deallocate"
    assert by_platform["gcp_run_like"]["resource_behavior"] == "scale_down_cpu"
    assert by_platform["gcp_run_like"]["keep_alive_cpu_vcpus"] == 0.01
    assert by_platform["azure_consumption_like"]["resource_behavior"] == "full_allocation"
    assert by_platform["cloudflare_workers_like"]["resource_behavior"] == "code_cache"
