"""Benchmark harness package.

The ``__init__.py`` makes ``benchmarks`` a proper package so the benchmark
modules' ``from .conftest import emit, run_once`` relative imports resolve
when pytest collects the whole tree (tier-1: ``python -m pytest -x -q``).
"""
