"""Figure 11: theoretical durations under different bandwidth-control periods (Equation 2)."""

from repro.analysis.quantization import figure11_series, figure11_summary

from .conftest import emit, run_once


def test_bench_fig11_theoretical_durations(benchmark):
    rows = run_once(benchmark, figure11_series)
    summary = figure11_summary(rows)
    emit("Figure 11 -- deviation from ideal reciprocal scaling per period", summary)
    by_period = {row["period_ms"]: row for row in summary}

    # Shape: the deviation from the ideal reciprocal curve grows monotonically
    # with the bandwidth-control period; short periods track the ideal closely.
    periods = sorted(by_period)
    deviations = [by_period[p]["mean_abs_deviation_ms"] for p in periods]
    assert deviations == sorted(deviations)
    assert by_period[5.0]["mean_abs_deviation_ms"] < 2.0
    assert by_period[100.0]["mean_abs_deviation_ms"] > 10.0
    # Durations never drop below the task's CPU demand (51.8 ms).
    assert all(row["duration_ms"] >= 51.8 - 1e-6 for row in rows)
