"""Benchmarks for the extension studies built on top of the paper's results.

These are not paper figures; they quantify the paper's §4.3 proposed fix
(event-driven quota enforcement), the §2 instance-billing break-even, and the
§5 platform-selection advice on the same substrates.
"""

from repro.billing.instance_billing import break_even_utilization, compare_request_vs_instance_billing
from repro.core.advisor import PlatformSelectionAdvisor
from repro.sched.analytical import theoretical_duration
from repro.sched.cgroup import BandwidthConfig
from repro.sched.engine import QuotaEnforcement, SchedulerConfig, SchedulerSim
from repro.sched.task import SimTask
from repro.workloads.functions import PYAES_FUNCTION, get_workload

from .conftest import emit, run_once


def test_bench_event_driven_quota_enforcement(benchmark):
    """§4.3 proposal: one-shot-timer enforcement eliminates overrun/overallocation."""

    def sweep():
        rows = []
        for fraction in (0.1, 0.25, 0.5, 0.8):
            row = {"vcpu_fraction": fraction}
            for enforcement in (QuotaEnforcement.TICK, QuotaEnforcement.EVENT):
                config = SchedulerConfig(
                    bandwidth=BandwidthConfig.for_vcpu_fraction(fraction, 0.020),
                    tick_hz=250,
                    horizon_s=5.0,
                    quota_enforcement=enforcement,
                )
                result = SchedulerSim(config, [SimTask.cpu_bound(0.016, name="t")]).run().single
                row[f"{enforcement.value}_duration_ms"] = result.duration_s * 1e3
            row["eq2_duration_ms"] = theoretical_duration(0.016, 0.020, fraction * 0.020) * 1e3
            rows.append(row)
        return rows

    rows = run_once(benchmark, sweep)
    emit("Extension -- tick vs event-driven quota enforcement (16 ms task, P=20 ms)", rows)
    for row in rows:
        # Event enforcement recovers Equation (2) exactly; tick enforcement is
        # at most as slow (it overruns, i.e. overallocates).
        assert abs(row["event_duration_ms"] - row["eq2_duration_ms"]) < 0.5
        assert row["tick_duration_ms"] <= row["event_duration_ms"] + 1e-6


def test_bench_instance_billing_break_even(benchmark):
    """§2.1/§2.4: when provisioned (instance-billed) capacity beats request billing."""

    def sweep():
        rows = [
            compare_request_vs_instance_billing(rph, 0.2, 1.0, 2.0).as_row()
            for rph in (100, 1_000, 5_000, 10_000, 15_000)
        ]
        rows.append({"break_even_utilization": break_even_utilization(0.2, 1.0, 2.0)})
        return rows

    rows = run_once(benchmark, sweep)
    emit("Extension -- request-based vs instance-based billing", rows)
    breakeven = rows[-1]["break_even_utilization"]
    assert 0.05 < breakeven < 1.0
    # Low-rate traffic favours request billing; near-saturation traffic favours instances.
    assert rows[0]["instance_billing_cheaper"] == 0.0
    assert rows[-2]["instance_billing_cheaper"] == 1.0


def test_bench_platform_selection(benchmark):
    """§5: the cheapest platform depends on the workload's CPU/wall-clock profile."""

    def rank():
        advisor = PlatformSelectionAdvisor()
        compute = advisor.rank(PYAES_FUNCTION, 1.0, 1.769, requests_per_month=10e6)
        io_bound = advisor.rank(get_workload("io_bound"), 0.5, 0.5, requests_per_month=10e6)
        return {
            "compute_bound": [r.as_row() for r in compute],
            "io_bound": [r.as_row() for r in io_bound],
        }

    result = run_once(benchmark, rank)
    emit("Extension -- platform ranking (compute-bound PyAES)", result["compute_bound"])
    emit("Extension -- platform ranking (IO-bound workload)", result["io_bound"])
    # Usage-based billing wins for the IO-bound workload (idle wall-clock is not billed),
    # but not necessarily for the compute-bound one.
    assert result["io_bound"][0]["platform"] == "cloudflare_workers"
    assert result["compute_bound"][0]["platform"] != result["compute_bound"][-1]["platform"]
