#!/usr/bin/env python
"""Kernel / co-simulation throughput benchmark -- the perf half of the
observability PR.

Standalone script (deliberately *not* named ``test_*``: the pytest harness in
this directory regenerates paper figures; this one measures the simulation
substrate itself).  Four timed runs at fixed seeds:

- ``kernel_events``: raw heap-event dispatch through ``SimulationKernel.step``
  (a self-rescheduling handler chain), count cross-checked against an
  attached :class:`~repro.obs.profile.KernelProfiler`;
- ``bus_publish``: typed pub/sub dispatch through ``EventBus.publish`` with a
  realistic subscriber mix (exact type + MRO base);
- ``cluster_requests``: one full cluster co-simulation (platform + fleet +
  billing + scheduler in one kernel), events = completed requests so
  ``events_per_s`` reads as requests/second;
- ``sweep``: a small sequential backpressure grid, events = result rows.

Output is ``BENCH_kernel.json`` at the repo root (schema:
``{"area": "kernel", "runs": [{name, seed, events, wall_s, events_per_s}]}``)
so later PRs can diff the measured perf trajectory.  ``--quick`` shrinks every
run for CI smoke use.

Usage::

    python benchmarks/bench_kernel.py            # full sizes, writes BENCH_kernel.json
    python benchmarks/bench_kernel.py --quick    # CI smoke sizes
    python benchmarks/bench_kernel.py --output /tmp/bench.json
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
from pathlib import Path
from time import perf_counter
from typing import Dict, List

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.obs.profile import KernelProfiler  # noqa: E402
from repro.sim.events import EventBus, RequestCompleted, SimEvent  # noqa: E402
from repro.sim.kernel import SimulationKernel  # noqa: E402

#: Seed shared by every run: the benchmark measures speed, not statistics,
#: and a fixed seed keeps event counts identical run-to-run.
SEED = 2026


def bench_kernel_events(num_events: int) -> Dict[str, object]:
    """Raw heap throughput: one self-rescheduling event chain of known length."""
    kernel = SimulationKernel()
    profiler = KernelProfiler()
    profiler.install(kernel)
    state = {"fired": 0}

    def tick(event) -> None:
        state["fired"] += 1
        if state["fired"] < num_events:
            kernel.schedule_in(0.001, "tick")

    kernel.on("tick", tick)
    kernel.schedule(0.0, "tick")
    start = perf_counter()
    kernel.run()
    wall_s = perf_counter() - start
    fired = state["fired"]
    profiled = profiler.snapshot().count_of("tick")
    if fired != num_events or profiled != num_events:
        raise AssertionError(
            f"kernel_events miscount: fired={fired} profiled={profiled} expected={num_events}"
        )
    return {"name": "kernel_events", "seed": SEED, "events": fired, "wall_s": wall_s}


def bench_bus_publish(num_events: int) -> Dict[str, object]:
    """Typed pub/sub throughput with an exact-type and a base-type subscriber."""

    @dataclasses.dataclass(frozen=True)
    class BenchEvent(SimEvent):
        value: int = 0

    bus = EventBus()
    state = {"exact": 0, "base": 0}
    bus.subscribe(BenchEvent, lambda event: state.__setitem__("exact", state["exact"] + 1))
    bus.subscribe(SimEvent, lambda event: state.__setitem__("base", state["base"] + 1))
    events = [BenchEvent(time_s=float(index), value=index) for index in range(num_events)]
    start = perf_counter()
    for event in events:
        bus.publish(event)
    wall_s = perf_counter() - start
    if state["exact"] != num_events or state["base"] != num_events:
        raise AssertionError(f"bus_publish miscount: {state} expected={num_events}")
    return {"name": "bus_publish", "seed": SEED, "events": num_events, "wall_s": wall_s}


def bench_cluster_requests(duration_s: float) -> Dict[str, object]:
    """One co-simulated cluster point; events = completed requests."""
    from repro.cluster.cosim import ClusterSimulator, FunctionDeployment
    from repro.cluster.fleet import FleetConfig
    from repro.cluster.host import HostSpec
    from repro.obs import Observability
    from repro.platform.presets import get_platform_preset
    from repro.workloads.functions import get_workload

    preset = get_platform_preset("gcp_run_like")
    workload = get_workload("pyaes")
    deployments = []
    for index in range(8):
        function = dataclasses.replace(
            workload.to_function_config(1.0, 2.0, init_duration_s=1.0),
            name=f"fn-{index:03d}",
        )
        deployments.append(
            FunctionDeployment(
                function=function, platform=preset, rps=4.0, duration_s=duration_s
            )
        )
    obs = Observability(telemetry_interval_s=None, trace=False)
    simulator = ClusterSimulator(
        deployments,
        fleet_config=FleetConfig(host_spec=HostSpec(vcpus=16.0, memory_gb=64.0)),
        billing_platform="gcp_run_request",
        seed=SEED,
        feedback="on",
        obs=obs,
    )
    start = perf_counter()
    result = simulator.run()
    wall_s = perf_counter() - start
    completed = sum(m.num_requests for m in result.metrics.values())
    arrivals = sum(m.arrivals for m in result.metrics.values())
    # The profiler's publish tally must agree with the domain metrics: every
    # completion crossed the bus exactly once.
    published = obs.kernel_profile().publishes.get("RequestCompleted")
    if published is None or published["count"] != completed:
        raise AssertionError(
            f"cluster_requests miscount: published={published} completed={completed}"
        )
    if arrivals < completed:
        raise AssertionError(f"arrivals {arrivals} < completed {completed}")
    return {"name": "cluster_requests", "seed": SEED, "events": completed, "wall_s": wall_s}


def bench_sweep(duration_s: float) -> Dict[str, object]:
    """Sequential backpressure grid wall-clock; events = result rows."""
    from repro.analysis.backpressure import backpressure_sweep

    axes = {
        "queue_depth": (0, 4),
        "placement_policy": ("best_fit",),
        "heterogeneity": ("homogeneous", "two_tier"),
    }
    start = perf_counter()
    store = backpressure_sweep(
        axes=axes, common={"duration_s": duration_s, "feedback": "on"}, base_seed=SEED
    )
    wall_s = perf_counter() - start
    if len(store) != 4:
        raise AssertionError(f"sweep produced {len(store)} rows, expected 4")
    return {"name": "sweep", "seed": SEED, "events": len(store), "wall_s": wall_s}


def run_benchmarks(quick: bool) -> Dict[str, object]:
    runs: List[Dict[str, object]] = [
        bench_kernel_events(20_000 if quick else 200_000),
        bench_bus_publish(20_000 if quick else 200_000),
        bench_cluster_requests(10.0 if quick else 60.0),
        bench_sweep(10.0 if quick else 30.0),
    ]
    for run in runs:
        wall_s = float(run["wall_s"])  # type: ignore[arg-type]
        run["wall_s"] = round(wall_s, 6)
        run["events_per_s"] = round(float(run["events"]) / wall_s, 3) if wall_s > 0 else 0.0  # type: ignore[arg-type]
    return {"area": "kernel", "runs": runs}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="CI smoke sizes (~seconds)")
    parser.add_argument(
        "--output",
        default=str(REPO_ROOT / "BENCH_kernel.json"),
        help="Output JSON path (default: BENCH_kernel.json at the repo root)",
    )
    args = parser.parse_args(argv)
    payload = run_benchmarks(quick=args.quick)
    with open(args.output, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    for run in payload["runs"]:  # type: ignore[union-attr]
        print(
            f"{run['name']:>20}: {run['events']:>8} events in {run['wall_s']:>9.4f}s "
            f"({run['events_per_s']:>12.1f} events/s)"
        )
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
