#!/usr/bin/env python
"""Kernel / co-simulation throughput benchmark -- the repo's perf gate.

Standalone script (deliberately *not* named ``test_*``: the pytest harness in
this directory regenerates paper figures; this one measures the simulation
substrate itself).  Six timed runs at fixed seeds:

- ``kernel_events``: raw heap-event dispatch through ``SimulationKernel.run``
  (a self-rescheduling handler chain), count cross-checked against an
  attached :class:`~repro.obs.profile.KernelProfiler`;
- ``bus_publish``: typed pub/sub dispatch through ``EventBus.publish`` with a
  realistic subscriber mix (exact type + MRO base);
- ``cluster_requests``: one full cluster co-simulation (platform + fleet +
  billing + scheduler in one kernel), events = completed requests so
  ``events_per_s`` reads as requests/second;
- ``sweep``: a small sequential backpressure grid, events = result rows;
- ``million_events``: the ``kernel_events`` chain at scale (1M events in the
  full configuration), profiler-verified;
- ``million_requests``: a 1M-request cluster run on one core with *streamed*
  arrivals (``ArrivalSource`` chunks, ``retain_outcomes=False``) -- the run
  asserts the kernel heap stayed bounded and no per-request outcome objects
  were retained, i.e. memory does not scale with the request count.

Short timed runs repeat several times and report the best (minimum) wall
clock -- the standard defence against scheduler noise on a shared single
core; the repeat count is recorded in each run's ``config``.  Event counts
are seed-deterministic and must be identical across repeats (asserted).

Output is ``BENCH_kernel.json`` at the repo root (schema: ``{"area":
"kernel", "runs": [{name, seed, events, wall_s, events_per_s, config}]}``)
so later PRs can diff the measured perf trajectory.  ``--quick`` shrinks
every run for CI smoke use.  ``--baseline PATH`` compares against a previous
output file after running: per-run events/s deltas are printed (advisory --
wall clock is machine-dependent), but an *event-count* difference between
runs with identical configs is a determinism regression and fails the
script.

Usage::

    python benchmarks/bench_kernel.py            # full sizes, writes BENCH_kernel.json
    python benchmarks/bench_kernel.py --quick    # CI smoke sizes
    python benchmarks/bench_kernel.py --output /tmp/bench.json
    python benchmarks/bench_kernel.py --quick --baseline BENCH_kernel.json
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
from pathlib import Path
from time import perf_counter
from typing import Callable, Dict, List, Optional

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.obs.profile import KernelProfiler  # noqa: E402
from repro.sim.events import EventBus, RequestCompleted, SimEvent  # noqa: E402
from repro.sim.kernel import SimulationKernel  # noqa: E402

#: Seed shared by every run: the benchmark measures speed, not statistics,
#: and a fixed seed keeps event counts identical run-to-run.
SEED = 2026


def _best_of(make_run: Callable[[], Dict[str, object]], repeats: int) -> Dict[str, object]:
    """Run a benchmark ``repeats`` times, keep the fastest wall clock.

    The event count is deterministic, so repeats must agree on it exactly;
    only the timing varies with machine noise.
    """
    best: Optional[Dict[str, object]] = None
    for _ in range(max(1, repeats)):
        run = make_run()
        if best is not None and run["events"] != best["events"]:
            raise AssertionError(
                f"{run['name']}: event count changed across repeats "
                f"({best['events']} != {run['events']}) -- the run is not deterministic"
            )
        if best is None or run["wall_s"] < best["wall_s"]:
            best = run
    assert best is not None
    best["config"]["repeats"] = max(1, repeats)  # type: ignore[index]
    return best


def bench_kernel_events(num_events: int, name: str = "kernel_events") -> Dict[str, object]:
    """Raw heap throughput: one self-rescheduling event chain of known length."""
    kernel = SimulationKernel()
    profiler = KernelProfiler()
    profiler.install(kernel)
    state = {"fired": 0}

    def tick(event) -> None:
        state["fired"] += 1
        if state["fired"] < num_events:
            kernel.schedule_in(0.001, "tick")

    kernel.on("tick", tick)
    kernel.schedule(0.0, "tick")
    start = perf_counter()
    kernel.run()
    wall_s = perf_counter() - start
    fired = state["fired"]
    profiled = profiler.snapshot().count_of("tick")
    if fired != num_events or profiled != num_events:
        raise AssertionError(
            f"{name} miscount: fired={fired} profiled={profiled} expected={num_events}"
        )
    return {
        "name": name,
        "seed": SEED,
        "events": fired,
        "wall_s": wall_s,
        "config": {"num_events": num_events},
    }


def bench_million_events(num_events: int) -> Dict[str, object]:
    """The kernel chain at million-event scale, profiler-verified."""
    return bench_kernel_events(num_events, name="million_events")


def bench_bus_publish(num_events: int) -> Dict[str, object]:
    """Typed pub/sub throughput with an exact-type and a base-type subscriber."""

    @dataclasses.dataclass(frozen=True)
    class BenchEvent(SimEvent):
        value: int = 0

    bus = EventBus()
    state = {"exact": 0, "base": 0}
    bus.subscribe(BenchEvent, lambda event: state.__setitem__("exact", state["exact"] + 1))
    bus.subscribe(SimEvent, lambda event: state.__setitem__("base", state["base"] + 1))
    events = [BenchEvent(time_s=float(index), value=index) for index in range(num_events)]
    start = perf_counter()
    for event in events:
        bus.publish(event)
    wall_s = perf_counter() - start
    if state["exact"] != num_events or state["base"] != num_events:
        raise AssertionError(f"bus_publish miscount: {state} expected={num_events}")
    return {
        "name": "bus_publish",
        "seed": SEED,
        "events": num_events,
        "wall_s": wall_s,
        "config": {"num_events": num_events},
    }


def bench_cluster_requests(duration_s: float) -> Dict[str, object]:
    """One co-simulated cluster point; events = completed requests."""
    from repro.cluster.cosim import ClusterSimulator, FunctionDeployment
    from repro.cluster.fleet import FleetConfig
    from repro.cluster.host import HostSpec
    from repro.obs import Observability
    from repro.platform.presets import get_platform_preset
    from repro.workloads.functions import get_workload

    preset = get_platform_preset("gcp_run_like")
    workload = get_workload("pyaes")
    deployments = []
    for index in range(8):
        function = dataclasses.replace(
            workload.to_function_config(1.0, 2.0, init_duration_s=1.0),
            name=f"fn-{index:03d}",
        )
        deployments.append(
            FunctionDeployment(
                function=function, platform=preset, rps=4.0, duration_s=duration_s
            )
        )
    obs = Observability(telemetry_interval_s=None, trace=False)
    simulator = ClusterSimulator(
        deployments,
        fleet_config=FleetConfig(host_spec=HostSpec(vcpus=16.0, memory_gb=64.0)),
        billing_platform="gcp_run_request",
        seed=SEED,
        feedback="on",
        obs=obs,
    )
    start = perf_counter()
    result = simulator.run()
    wall_s = perf_counter() - start
    completed = sum(m.num_requests for m in result.metrics.values())
    arrivals = sum(m.arrivals for m in result.metrics.values())
    # The profiler's publish tally must agree with the domain metrics: every
    # completion crossed the bus exactly once.
    published = obs.kernel_profile().publishes.get("RequestCompleted")
    if published is None or published["count"] != completed:
        raise AssertionError(
            f"cluster_requests miscount: published={published} completed={completed}"
        )
    if arrivals < completed:
        raise AssertionError(f"arrivals {arrivals} < completed {completed}")
    return {
        "name": "cluster_requests",
        "seed": SEED,
        "events": completed,
        "wall_s": wall_s,
        "config": {"duration_s": duration_s, "functions": 8, "rps": 4.0},
    }


def bench_million_requests(num_requests: int) -> Dict[str, object]:
    """A million-request cluster run on one core with bounded memory.

    Arrivals are *streamed* (chunked ``ArrivalSource`` scheduling, tie-break
    ranks reserved up front) and ``retain_outcomes=False`` drops per-request
    outcome objects at record time, so neither the kernel heap nor the
    metrics layer ever holds the full request population.  Both properties
    are asserted, not assumed: the profiler's ``max_heap_depth`` must stay a
    small multiple of the arrival chunk size, and the retained-outcome lists
    must be empty.
    """
    from repro.cluster.cosim import ClusterSimulator, FunctionDeployment
    from repro.obs import Observability
    from repro.platform.presets import get_platform_preset
    from repro.sim.arrivals import DEFAULT_CHUNK_SIZE
    from repro.workloads.functions import get_workload

    functions = 4
    rps = 250.0
    duration_s = num_requests / (functions * rps)
    preset = get_platform_preset("gcp_run_like")
    workload = get_workload("pyaes")
    deployments = []
    for index in range(functions):
        function = dataclasses.replace(
            workload.to_function_config(1.0, 2.0, init_duration_s=1.0),
            name=f"fn-{index:03d}",
        )
        deployments.append(
            FunctionDeployment(
                function=function, platform=preset, rps=rps, duration_s=duration_s
            )
        )
    obs = Observability(telemetry_interval_s=None, trace=False)
    simulator = ClusterSimulator(
        deployments,
        seed=SEED,
        feedback="off",
        obs=obs,
        retain_outcomes=False,
    )
    # The default drain tail is sized for lightly loaded sandboxes; at 250
    # rps the final burst sits in one heavily contended sandbox and needs a
    # few extra simulated seconds, so give the run an explicit horizon.
    start = perf_counter()
    result = simulator.run(horizon_s=duration_s + 120.0)
    wall_s = perf_counter() - start
    metrics = result.metrics.values()
    arrivals = sum(m.arrivals for m in metrics)
    completed = sum(m.num_requests for m in metrics)
    failed = sum(m.failed_requests for m in metrics)
    pending = sum(m.pending_requests for m in metrics)
    if arrivals != num_requests:
        raise AssertionError(
            f"million_requests scheduled {arrivals} arrivals, expected {num_requests}"
        )
    if completed + failed + pending != arrivals:
        raise AssertionError(
            f"million_requests conservation violated: {completed}+{failed}+{pending} != {arrivals}"
        )
    retained = sum(len(m.requests) for m in metrics)
    if retained:
        raise AssertionError(f"million_requests retained {retained} outcome objects")
    profile = obs.kernel_profile()
    # Streamed arrivals keep at most one chunk per deployment pending; the
    # rest of the heap is in-flight work, which is rate- not count-bound.
    heap_bound = functions * DEFAULT_CHUNK_SIZE + 16_384
    if profile.max_heap_depth >= heap_bound:
        raise AssertionError(
            f"million_requests heap grew to {profile.max_heap_depth} "
            f"(bound {heap_bound}) -- arrivals were not streamed"
        )
    return {
        "name": "million_requests",
        "seed": SEED,
        "events": completed,
        "wall_s": wall_s,
        "config": {
            "num_requests": num_requests,
            "functions": functions,
            "rps": rps,
            "arrival_process": "constant",
            "retain_outcomes": False,
            "max_heap_depth": profile.max_heap_depth,
        },
    }


def bench_sweep(duration_s: float) -> Dict[str, object]:
    """Sequential backpressure grid wall-clock; events = result rows."""
    from repro.analysis.backpressure import backpressure_sweep

    axes = {
        "queue_depth": (0, 4),
        "placement_policy": ("best_fit",),
        "heterogeneity": ("homogeneous", "two_tier"),
    }
    start = perf_counter()
    store = backpressure_sweep(
        axes=axes, common={"duration_s": duration_s, "feedback": "on"}, base_seed=SEED
    )
    wall_s = perf_counter() - start
    if len(store) != 4:
        raise AssertionError(f"sweep produced {len(store)} rows, expected 4")
    return {
        "name": "sweep",
        "seed": SEED,
        "events": len(store),
        "wall_s": wall_s,
        "config": {"duration_s": duration_s, "grid_points": 4},
    }


def run_benchmarks(quick: bool) -> Dict[str, object]:
    # Untimed warmup: the first seconds of a process run ~30% slower (cold
    # caches, CPU frequency ramp), a cost best-of-N repeats of an
    # already-cold run cannot absorb.  Promotion to steady-state speed takes
    # sustained busy time, so warm up by wall clock, not event count.
    warm_s = 0.0
    while warm_s < 2.5:
        warm_s += float(bench_kernel_events(200_000)["wall_s"])
    runs: List[Dict[str, object]] = [
        _best_of(lambda: bench_kernel_events(20_000 if quick else 200_000), repeats=5),
        _best_of(lambda: bench_bus_publish(20_000 if quick else 200_000), repeats=5),
        _best_of(lambda: bench_cluster_requests(10.0 if quick else 60.0), repeats=5),
        _best_of(lambda: bench_sweep(10.0 if quick else 30.0), repeats=1),
        _best_of(lambda: bench_million_events(100_000 if quick else 1_000_000), repeats=3),
        _best_of(lambda: bench_million_requests(20_000 if quick else 1_000_000), repeats=1),
    ]
    for run in runs:
        wall_s = float(run["wall_s"])  # type: ignore[arg-type]
        run["wall_s"] = round(wall_s, 6)
        run["events_per_s"] = round(float(run["events"]) / wall_s, 3) if wall_s > 0 else 0.0  # type: ignore[arg-type]
    return {"area": "kernel", "runs": runs}


def compare_to_baseline(payload: Dict[str, object], baseline_path: str) -> int:
    """Print per-run deltas against a previous output file.

    Wall-clock / throughput changes are advisory (machines differ; noise is
    real).  An event-count change between two runs with *identical configs*
    means the simulation itself changed behaviour under the same seed -- the
    one thing this benchmark is allowed to hard-fail on.  Baselines written
    by older versions of this script have no ``config`` field; their counts
    are skipped, not compared.
    """
    with open(baseline_path) as handle:
        baseline = json.load(handle)
    baseline_runs = {run["name"]: run for run in baseline.get("runs", [])}
    failures: List[str] = []
    print(f"--- comparison vs {baseline_path} ---")
    for run in payload["runs"]:  # type: ignore[union-attr]
        name = run["name"]
        base = baseline_runs.pop(name, None)
        if base is None:
            print(f"{name:>20}: new run (no baseline entry)")
            continue
        same_config = "config" in base and base["config"] == run["config"]
        base_rate = float(base.get("events_per_s", 0.0))
        rate = float(run["events_per_s"])
        delta = (rate / base_rate - 1.0) if base_rate > 0 else 0.0
        note = "" if same_config else "  [config differs: rate advisory only]"
        print(
            f"{name:>20}: {base_rate:>12,.1f} -> {rate:>12,.1f} events/s "
            f"({delta:+7.1%}){note}"
        )
        if same_config and int(base["events"]) != int(run["events"]):
            failures.append(
                f"{name}: event count {base['events']} -> {run['events']} "
                "with identical config (determinism regression)"
            )
    for name in baseline_runs:
        print(f"{name:>20}: present in baseline only (run removed?)")
    if failures:
        print("EVENT-COUNT MISMATCH (hard failure):")
        for line in failures:
            print(f"  {line}")
        return 1
    print("event counts match on every comparable run (wall clock is advisory)")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="CI smoke sizes (~seconds)")
    parser.add_argument(
        "--output",
        default=str(REPO_ROOT / "BENCH_kernel.json"),
        help="Output JSON path (default: BENCH_kernel.json at the repo root)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help="Previous output JSON to diff against (events/s advisory; "
        "event-count mismatch on identical configs fails)",
    )
    args = parser.parse_args(argv)
    payload = run_benchmarks(quick=args.quick)
    with open(args.output, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    for run in payload["runs"]:  # type: ignore[union-attr]
        print(
            f"{run['name']:>20}: {run['events']:>8} events in {run['wall_s']:>9.4f}s "
            f"({run['events_per_s']:>12.1f} events/s)"
        )
    print(f"wrote {args.output}")
    if args.baseline:
        return compare_to_baseline(payload, args.baseline)
    return 0


if __name__ == "__main__":
    sys.exit(main())
