"""Figure 10: execution duration versus fractional CPU allocation (overallocation)."""

import numpy as np

from repro.analysis.overallocation import (
    figure10_allocation_sweep,
    figure10_jump_positions,
    figure10_summary,
)

from .conftest import emit, run_once


def test_bench_fig10_aws_allocation_sweep(benchmark):
    rows = run_once(
        benchmark,
        figure10_allocation_sweep,
        provider="aws_lambda",
        cpu_time_s=0.016,
        samples_per_point=15,
        seed=3,
    )
    emit("Figure 10(a) -- AWS-like duration vs fractional allocation", rows)
    summary = figure10_summary(rows)
    emit("Figure 10(a) -- summary", [summary])
    jumps = figure10_jump_positions(provider="aws_lambda", cpu_time_s=0.016)
    emit("Figure 10(a) -- predicted quantization-jump allocations", jumps)

    # Shape: the empirical mean sits at or below the reciprocal expectation
    # (overallocation), the curve is monotonically decreasing overall, and the
    # top of the allocation range is a plateau at the full-speed duration.
    assert summary["fraction_at_or_below_expected"] >= 0.9
    assert summary["mean_overallocation_ratio_subcore"] >= 1.05
    ordered = sorted(rows, key=lambda r: r["vcpu_fraction"])
    assert ordered[0]["empirical_mean_duration_ms"] > ordered[-1]["empirical_mean_duration_ms"]
    assert ordered[-1]["empirical_mean_duration_ms"] == float(
        np.clip(ordered[-1]["empirical_mean_duration_ms"], 15.0, 17.0)
    )
    # The first predicted jump is at ~1,400 MB, matching the paper's harmonic sequence.
    assert abs(jumps[0]["memory_mb"] - 1415) < 20


def test_bench_fig10_gcp_allocation_sweep(benchmark):
    rows = run_once(
        benchmark,
        figure10_allocation_sweep,
        provider="gcp_run_functions",
        cpu_time_s=0.016,
        samples_per_point=8,
        seed=11,
    )
    emit("Figure 10(b) -- GCP-like duration vs fractional allocation", rows)
    # Same qualitative shape on the GCP-like configuration (100 ms period).
    for row in rows:
        assert row["empirical_mean_duration_ms"] <= row["expected_duration_ms"] * 1.05
    ordered = sorted(rows, key=lambda r: r["vcpu_fraction"])
    assert ordered[0]["empirical_mean_duration_ms"] > ordered[-1]["empirical_mean_duration_ms"]
