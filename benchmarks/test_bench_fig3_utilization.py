"""Figure 3: resource utilisation distributions and their correlation."""

from repro.analysis.utilization import figure3_summary

from .conftest import emit, run_once


def test_bench_fig3_utilization(benchmark, bench_trace):
    rows = run_once(benchmark, figure3_summary, bench_trace)
    emit("Figure 3 -- utilisation statistics (measured vs paper)", rows)
    values = {row["metric"]: row["measured"] for row in rows}

    # Shape: most requests use well under their allocation, and the CPU/memory
    # utilisation correlation is moderate (paper: Pearson 0.552 / Spearman 0.565),
    # i.e. not strong enough to justify coupled CPU-memory control knobs.
    assert values["cpu_below_half_fraction"] > 0.35
    assert values["memory_below_half_fraction"] > 0.45
    assert 0.3 <= values["pearson"] <= 0.8
    assert 0.3 <= values["spearman"] <= 0.8
    assert abs(values["pearson"] - 0.552) < 0.25
