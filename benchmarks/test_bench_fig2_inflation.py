"""Figure 2: billable resources under different billing models (trace-driven)."""

from repro.analysis.inflation import figure2_cdf_series, figure2_summary

from .conftest import emit, run_once


def test_bench_fig2_billable_resource_inflation(benchmark, bench_trace):
    rows = run_once(benchmark, figure2_summary, bench_trace)
    emit("Figure 2 -- billable vs actual resources (aggregate inflation factors)", rows)
    by_platform = {row["platform"]: row for row in rows}

    # Shape: usage-based billing shows the lowest inflation (Cloudflare CPU ~1x,
    # Azure memory lowest among memory billers); GCP's 100 ms rounding is the
    # highest for both resources; AWS sits in between; all inflations are in
    # the single-digit-multiple range the paper reports (1x-5x), not 100x.
    assert 1.0 <= by_platform["cloudflare_workers"]["cpu_inflation"] <= 1.2
    gcp = by_platform["gcp_run_request"]
    aws = by_platform["aws_lambda"]
    azure = by_platform["azure_consumption"]
    huawei = by_platform["huawei_functiongraph"]
    assert gcp["cpu_inflation"] >= aws["cpu_inflation"] >= by_platform["cloudflare_workers"]["cpu_inflation"]
    assert gcp["memory_inflation"] >= aws["memory_inflation"]
    assert azure["memory_inflation"] <= huawei["memory_inflation"]
    for row in rows:
        for key in ("cpu_inflation", "memory_inflation"):
            if row[key] > 0:
                assert 1.0 <= row[key] < 8.0


def test_bench_fig2_cdf_series(benchmark, bench_trace):
    series = run_once(benchmark, figure2_cdf_series, bench_trace, num_points=40)
    cpu_rows = [
        {"series": name, "p50_value": points[len(points) // 2][0]}
        for name, points in series["cpu"].items()
    ]
    emit("Figure 2 -- billable vCPU-seconds CDF medians per series", cpu_rows)
    # The billable CDFs lie to the right of (dominate) the actual-usage CDF.
    actual_median = dict((r["series"], r["p50_value"]) for r in cpu_rows)["actual_usage"]
    for row in cpu_rows:
        if row["series"] != "actual_usage":
            assert row["p50_value"] >= actual_median * 0.99
