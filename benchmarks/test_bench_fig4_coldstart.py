"""Figure 4: billable resources of cold starts versus subsequent executions."""

from repro.analysis.coldstart import figure4_summary

from .conftest import emit, run_once


def test_bench_fig4_coldstart_cost(benchmark, bench_trace):
    rows = run_once(benchmark, figure4_summary, bench_trace)
    emit("Figure 4 -- cold starts whose init cost is not amortised", rows)
    by_resource = {row["resource"]: row for row in rows}

    # Shape: a substantial fraction of cold starts consume at least as many
    # billable resources during initialisation as all their subsequent
    # requests combined (paper: ~42.1%), which motivates turnaround billing.
    for resource in ("cpu", "memory"):
        fraction = by_resource[resource]["negative_or_zero_fraction"]
        assert 0.10 <= fraction <= 0.90
        assert by_resource[resource]["num_cold_starts"] > 100
