"""Provider-side density study: why control knobs are constrained (paper §2.2 / §3.3)."""

from repro.cluster.density import deployment_density_study, keepalive_density_impact
from repro.platform.presets import get_platform_preset

from .conftest import emit, run_once


def test_bench_density_control_knob_regimes(benchmark):
    reports = run_once(benchmark, deployment_density_study, num_sandboxes=2000, seed=0)
    rows = [r.as_row() for r in reports]
    emit("Extension -- deployment density under control-knob regimes (§2.2)", rows)
    by_regime = {row["regime"]: row for row in rows}
    # Constraining CPU:memory ratios packs at least as densely as free-form
    # allocations, which is the provider-side rationale for constrained knobs.
    assert by_regime["ratio_1_to_4"]["num_hosts"] <= by_regime["free_form"]["num_hosts"]
    assert by_regime["free_form"]["stranded_vcpus"] >= by_regime["ratio_1_to_4"]["stranded_vcpus"]


def test_bench_density_keepalive_pinning(benchmark):
    policies = {
        "aws_freeze": get_platform_preset("aws_lambda_like").keep_alive,
        "gcp_scale_down": get_platform_preset("gcp_run_like").keep_alive,
        "azure_full": get_platform_preset("azure_consumption_like").keep_alive,
    }
    rows = run_once(benchmark, keepalive_density_impact, policies, num_idle_sandboxes=2000)
    emit("Extension -- host capacity pinned by idle (kept-alive) sandboxes (§3.3)", rows)
    by_policy = {row["policy"]: row for row in rows}
    assert by_policy["aws_freeze"]["num_hosts_pinned"] == 0.0
    assert by_policy["azure_full"]["num_hosts_pinned"] > by_policy["gcp_scale_down"]["num_hosts_pinned"]
