"""Table 1: billing models of major public serverless platforms."""

from repro.billing.catalog import PLATFORM_BILLING_MODELS
from repro.billing.models import BillableTime

from .conftest import emit, run_once


def test_bench_table1_billing_catalog(benchmark):
    rows = run_once(benchmark, lambda: [m.describe() for m in PLATFORM_BILLING_MODELS.values()])
    emit(
        "Table 1 -- Billing models of major public serverless platforms",
        rows,
        columns=[
            "platform",
            "billable_time",
            "time_granularity_ms",
            "minimum_time_ms",
            "allocation_resources",
            "usage_resources",
            "invocation_fee_usd",
        ],
    )
    # Shape: 12 platforms; turnaround billing is common (AWS, GCP, IBM); only
    # Cloudflare bills consumed CPU time; instance billing has no request fee.
    assert len(rows) == 12
    turnaround = [r for r in rows if r["billable_time"] == BillableTime.TURNAROUND.value]
    assert len(turnaround) >= 3
    cpu_time_billers = [r for r in rows if r["billable_time"] == BillableTime.CPU_TIME.value]
    assert [r["platform"] for r in cpu_time_billers] == ["cloudflare_workers"]
    for row in rows:
        if row["billable_time"] == BillableTime.INSTANCE.value:
            assert row["invocation_fee_usd"] == 0.0
