"""Figure 12: throttle interval / obtained CPU / throttle duration distributions."""

from repro.analysis.throttle import figure12_cfs_vs_eevdf, figure12_provider_profiles

from .conftest import emit, run_once


def test_bench_fig12_provider_profiles(benchmark):
    rows = run_once(
        benchmark,
        figure12_provider_profiles,
        configurations=(
            ("aws_128mb_0.072vcpu", "aws_lambda", 0.072),
            ("aws_442mb_0.25vcpu", "aws_lambda", 0.25),
            ("aws_884mb_0.5vcpu", "aws_lambda", 0.5),
            ("gcp_0.08vcpu", "gcp_run_functions", 0.08),
            ("gcp_0.25vcpu", "gcp_run_functions", 0.25),
            ("ibm_0.25vcpu", "ibm_code_engine", 0.25),
            ("ibm_0.5vcpu", "ibm_code_engine", 0.5),
        ),
        exec_duration_s=4.0,
        invocations=8,
    )
    emit("Figure 12(a)-(c) -- throttle profiles per provider configuration", rows)
    by_label = {row["configuration"]: row for row in rows}

    # Shape: AWS throttle intervals are multiples of 20 ms, IBM of 10 ms and
    # GCP of 100 ms; obtained CPU time per burst tracks the quota plus up to a
    # tick of overrun, so larger allocations obtain more per burst.
    assert abs(by_label["aws_442mb_0.25vcpu"]["throttle_interval_p50_ms"] % 20.0) < 1.0 or \
        abs(20.0 - by_label["aws_442mb_0.25vcpu"]["throttle_interval_p50_ms"] % 20.0) < 1.0
    assert abs(by_label["gcp_0.25vcpu"]["throttle_interval_p50_ms"] - 100.0) < 10.0
    assert abs(by_label["ibm_0.25vcpu"]["throttle_interval_p50_ms"] % 10.0) < 1.0 or \
        abs(10.0 - by_label["ibm_0.25vcpu"]["throttle_interval_p50_ms"] % 10.0) < 1.0
    assert (
        by_label["aws_884mb_0.5vcpu"]["obtained_cpu_mean_ms"]
        > by_label["aws_128mb_0.072vcpu"]["obtained_cpu_mean_ms"]
    )
    # GCP's 1000 Hz tick yields finer-grained (smaller relative overrun) allocation
    # than AWS's 250 Hz at the same 0.25 vCPU fraction, relative to its quota.
    gcp_quota_ms = 0.25 * 100.0
    aws_quota_ms = 0.25 * 20.0
    gcp_overrun = by_label["gcp_0.25vcpu"]["obtained_cpu_mean_ms"] / gcp_quota_ms
    aws_overrun = by_label["aws_442mb_0.25vcpu"]["obtained_cpu_mean_ms"] / aws_quota_ms
    assert gcp_overrun <= aws_overrun + 0.05


def test_bench_fig12_cfs_vs_eevdf(benchmark):
    rows = run_once(benchmark, figure12_cfs_vs_eevdf, exec_duration_s=4.0, invocations=8)
    emit("Figure 12(d) -- CFS vs EEVDF at 250/1000 Hz (P20 Q1.45)", rows)
    by_label = {row["configuration"]: row for row in rows}

    # Shape: overrun shrinks with a 1000 Hz timer, and EEVDF overruns slightly
    # less than CFS at the same timer frequency; the overallocation itself
    # persists under every combination (mean obtained >= quota).
    assert by_label["cfs_1000hz"]["mean_overrun_ratio"] < by_label["cfs_250hz"]["mean_overrun_ratio"]
    assert by_label["eevdf_250hz"]["mean_overrun_ratio"] <= by_label["cfs_250hz"]["mean_overrun_ratio"]
    assert by_label["eevdf_1000hz"]["mean_overrun_ratio"] <= by_label["eevdf_250hz"]["mean_overrun_ratio"]
    for row in rows:
        assert row["obtained_cpu_mean_ms"] >= row["quota_ms"] * 0.95
