"""Ablation benchmarks for the design choices DESIGN.md calls out.

These go beyond the paper's figures: they vary one mechanism at a time in the
simulators to confirm that the effect attributed to that mechanism actually
drives the reproduced result.
"""

import numpy as np

from repro.analysis.overallocation import figure10_allocation_sweep
from repro.analysis.throttle import profile_configuration
from repro.platform.autoscaler import AutoscalerConfig
from repro.platform.concurrency import ConcurrencyModel, ContentionModel
from repro.platform.config import PlatformConfig
from repro.platform.invoker import PlatformSimulator
from repro.platform.presets import get_platform_preset
from repro.workloads.functions import PYAES_FUNCTION
from repro.workloads.traffic import constant_rate_arrivals

from .conftest import emit, run_once


def test_bench_ablation_tick_frequency_drives_overrun(benchmark):
    """Ablation: the scheduler tick (CONFIG_HZ), not the period, drives quota overrun."""

    def sweep():
        rows = []
        for tick_hz in (100, 250, 1000):
            profile = profile_configuration(
                vcpu_fraction=0.072, period_s=0.020, tick_hz=tick_hz, exec_duration_s=3.0, invocations=5
            )
            obtained = profile.obtained_cpu_times_s()
            rows.append(
                {
                    "tick_hz": tick_hz,
                    "mean_obtained_ms": float(np.mean(obtained)) * 1e3 if obtained else float("nan"),
                    "quota_ms": 1.44,
                    "cpu_share": profile.cpu_obtained_s / profile.span_s,
                }
            )
        return rows

    rows = run_once(benchmark, sweep)
    emit("Ablation -- quota overrun vs timer frequency (P20, 0.072 vCPU)", rows)
    by_tick = {row["tick_hz"]: row for row in rows}
    assert by_tick[100]["mean_obtained_ms"] > by_tick[250]["mean_obtained_ms"] > by_tick[1000]["mean_obtained_ms"]
    # Even at 1000 Hz the task obtains at least its quota (overallocation persists).
    assert by_tick[1000]["mean_obtained_ms"] >= 1.44 * 0.95


def test_bench_ablation_bandwidth_period_drives_quantization(benchmark):
    """Ablation: longer bandwidth periods make the Figure 10 jumps coarser."""

    def sweep():
        rows = []
        # Use the Huawei-trace mean CPU time (51.8 ms) so the task spans
        # multiple periods under both configurations and the jump structure is
        # visible for each.
        for period_ms, provider in ((20.0, "aws_lambda"), (100.0, "gcp_run_functions")):
            points = figure10_allocation_sweep(
                provider=provider,
                cpu_time_s=0.0518,
                vcpu_fractions=(0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0),
                samples_per_point=6,
                seed=23,
            )
            durations = [p["empirical_mean_duration_ms"] for p in points]
            steps = np.abs(np.diff(durations))
            rows.append(
                {
                    "period_ms": period_ms,
                    "max_step_ms": float(np.max(steps)),
                    "mean_duration_ms": float(np.mean(durations)),
                }
            )
        return rows

    rows = run_once(benchmark, sweep)
    emit("Ablation -- duration step size vs bandwidth period", rows)
    by_period = {row["period_ms"]: row for row in rows}
    assert by_period[100.0]["max_step_ms"] >= by_period[20.0]["max_step_ms"]


def _gcp_variant(**overrides) -> PlatformConfig:
    base = get_platform_preset("gcp_run_like")
    kwargs = dict(
        name=overrides.get("name", "gcp_variant"),
        concurrency=overrides.get("concurrency", base.concurrency),
        serving=base.serving,
        keep_alive=base.keep_alive,
        autoscaler=overrides.get("autoscaler", base.autoscaler),
        contention=overrides.get("contention", base.contention),
        placement_delay_s=base.placement_delay_s,
    )
    return PlatformConfig(**kwargs)


def test_bench_ablation_concurrency_limit(benchmark):
    """Ablation (I6): a lower per-sandbox concurrency limit removes the dual penalty."""

    def sweep():
        function = PYAES_FUNCTION.to_function_config(1.0, 2.0, init_duration_s=1.5)
        rows = []
        for limit, workers in ((1, 1), (8, 8), (80, 8)):
            platform = _gcp_variant(
                name=f"gcp_limit_{limit}",
                concurrency=ConcurrencyModel.multi(max_concurrency=limit, runtime_workers=workers)
                if limit > 1
                else ConcurrencyModel.single(),
            )
            metrics = PlatformSimulator(platform, function, seed=5).run(constant_rate_arrivals(15, 90.0))
            rows.append(
                {
                    "concurrency_limit": limit,
                    "mean_duration_ms": metrics.mean_execution_duration_s() * 1e3,
                    "max_instances": metrics.max_instances(),
                }
            )
        return rows

    rows = run_once(benchmark, sweep)
    emit("Ablation -- mean duration vs per-sandbox concurrency limit (15 RPS)", rows)
    by_limit = {row["concurrency_limit"]: row for row in rows}
    # Single-concurrency keeps the duration at the uncontended service time but
    # needs many more instances; the default limit of 80 inflates duration.
    assert by_limit[1]["mean_duration_ms"] < by_limit[80]["mean_duration_ms"]
    assert by_limit[1]["max_instances"] > by_limit[80]["max_instances"]


def test_bench_ablation_autoscaler_window(benchmark):
    """Ablation: a shorter metric-aggregation window shrinks the Figure 6 scaling lag."""

    def sweep():
        function = PYAES_FUNCTION.to_function_config(1.0, 2.0, init_duration_s=1.5)
        rows = []
        for window_s in (10.0, 60.0):
            platform = _gcp_variant(
                name=f"gcp_window_{int(window_s)}",
                autoscaler=AutoscalerConfig(
                    target_cpu_utilization=0.6,
                    metric_window_s=window_s,
                    evaluation_interval_s=2.0,
                    scale_down_delay_s=60.0,
                ),
            )
            metrics = PlatformSimulator(platform, function, seed=6).run(constant_rate_arrivals(15, 120.0))
            rows.append(
                {
                    "metric_window_s": window_s,
                    "mean_duration_ms": metrics.mean_execution_duration_s() * 1e3,
                    "p95_duration_ms": metrics.percentile_execution_duration_s(0.95) * 1e3,
                }
            )
        return rows

    rows = run_once(benchmark, sweep)
    emit("Ablation -- burst slowdown vs autoscaler metric window (15 RPS)", rows)
    by_window = {row["metric_window_s"]: row for row in rows}
    assert by_window[10.0]["mean_duration_ms"] <= by_window[60.0]["mean_duration_ms"] * 1.05


def test_bench_ablation_contention_overhead(benchmark):
    """Ablation: the context-switch overhead term worsens the multi-concurrency penalty."""

    def sweep():
        function = PYAES_FUNCTION.to_function_config(1.0, 2.0, init_duration_s=1.5)
        rows = []
        for overhead in (0.0, 0.03, 0.10):
            platform = _gcp_variant(
                name=f"gcp_overhead_{overhead}",
                contention=ContentionModel(overhead_per_peer=overhead),
            )
            metrics = PlatformSimulator(platform, function, seed=7).run(constant_rate_arrivals(15, 60.0))
            rows.append(
                {
                    "overhead_per_peer": overhead,
                    "mean_duration_ms": metrics.mean_execution_duration_s() * 1e3,
                }
            )
        return rows

    rows = run_once(benchmark, sweep)
    emit("Ablation -- contention overhead term vs mean duration (15 RPS)", rows)
    ordered = sorted(rows, key=lambda r: r["overhead_per_peer"])
    assert ordered[0]["mean_duration_ms"] <= ordered[-1]["mean_duration_ms"]
